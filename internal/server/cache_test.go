package server

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/search"
	"repro/internal/telemetry"
)

// testSpaces enumerates distinct small functions and returns their keys
// in put order, oldest first.
func putSpaces(t *testing.T, st *diskStore, srcs map[string]string, order []string) []cacheKey {
	t.Helper()
	var keys []cacheKey
	for _, name := range order {
		fn := mustCompile(t, srcs[name], name)
		res := search.Run(fn, search.Options{})
		k := requestKey(fn, normOptions{})
		if err := st.put(k, res); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	return keys
}

var lruSrcs = map[string]string{
	"clamp": clampSrc,
	"myabs": absSrc,
	"neg":   negSrc,
}

// TestDiskStoreEvictsLRU bounds the store below three entries and
// checks the sweep removes exactly the least-recently-used ones,
// keeping the accounting and the cache_disk_bytes gauge in step with
// the files actually on disk.
func TestDiskStoreEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	gauge := reg.Gauge("cache_disk_bytes")
	st, err := newDiskStore(dir, 0, gauge) // unbounded while seeding
	if err != nil {
		t.Fatal(err)
	}
	keys := putSpaces(t, st, lruSrcs, []string{"clamp", "myabs", "neg"})
	total := st.diskBytes()
	if total <= 0 {
		t.Fatal("no bytes tracked after three puts")
	}
	if gauge.Value() != total {
		t.Fatalf("gauge %d != tracked total %d", gauge.Value(), total)
	}

	// Touch the oldest entry so "myabs" becomes the LRU victim, then
	// bound the store just below the full total: one eviction suffices.
	if _, err := st.load(keys[0]); err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	st.maxBytes = total - 1
	evicted := st.sweepLocked("")
	st.mu.Unlock()
	if evicted != 1 {
		t.Fatalf("evicted %d entries, want 1", evicted)
	}
	if _, err := os.Stat(st.path(keys[1])); !os.IsNotExist(err) {
		t.Fatalf("LRU entry %s still on disk (err=%v)", keys[1], err)
	}
	for _, k := range []cacheKey{keys[0], keys[2]} {
		if _, err := os.Stat(st.path(k)); err != nil {
			t.Fatalf("recently used entry %s evicted: %v", k, err)
		}
	}
	if st.diskBytes() > total-1 {
		t.Fatalf("tracked bytes %d still over budget %d", st.diskBytes(), total-1)
	}
	if gauge.Value() != st.diskBytes() {
		t.Fatalf("gauge %d != tracked total %d after sweep", gauge.Value(), st.diskBytes())
	}
}

// TestDiskStorePinnedEntriesSurviveSweep opens a reader on the oldest
// entry and forces a sweep: the pinned entry must be skipped (the
// download in flight keeps its file) and the next-oldest evicted
// instead; once released, the former victim goes first.
func TestDiskStorePinnedEntriesSurviveSweep(t *testing.T) {
	dir := t.TempDir()
	st, err := newDiskStore(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := putSpaces(t, st, lruSrcs, []string{"clamp", "myabs", "neg"})

	f, release, err := st.open(keys[0]) // pin the LRU entry
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	st.mu.Lock()
	st.maxBytes = 1 // evict everything evictable
	st.sweepLocked("")
	st.mu.Unlock()

	if _, err := os.Stat(st.path(keys[0])); err != nil {
		t.Fatalf("pinned entry was evicted: %v", err)
	}
	for _, k := range keys[1:] {
		if _, err := os.Stat(st.path(k)); !os.IsNotExist(err) {
			t.Fatalf("unpinned entry %s survived a 1-byte budget (err=%v)", k, err)
		}
	}
	// The pinned file is still readable end to end.
	if _, err := search.LoadFile(st.path(keys[0])); err != nil {
		t.Fatalf("pinned entry unreadable mid-pin: %v", err)
	}

	release()
	st.mu.Lock()
	st.sweepLocked("")
	st.mu.Unlock()
	if _, err := os.Stat(st.path(keys[0])); !os.IsNotExist(err) {
		t.Fatalf("released entry not evicted by the next sweep (err=%v)", err)
	}
	if got := st.diskBytes(); got != 0 {
		t.Fatalf("tracked bytes %d after full eviction, want 0", got)
	}
}

// TestDiskStoreScanSeedsAccounting restarts the store over an existing
// directory and checks the budget applies to inherited entries too —
// including leftover checkpoint slots, which a coordinator killed
// mid-shard can strand and which must stay evictable once unpinned.
func TestDiskStoreScanSeedsAccounting(t *testing.T) {
	dir := t.TempDir()
	st, err := newDiskStore(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	putSpaces(t, st, lruSrcs, []string{"clamp", "myabs", "neg"})

	// Checkpoint slots written through the store (dist mirrors) are
	// budgeted entries like any other; pins, not exemption, protect the
	// ones in use.
	ck := cacheKey(strings.Repeat("a", 64))
	if err := st.writeCkpt(ck, []byte("checkpoint bytes")); err != nil {
		t.Fatal(err)
	}
	total := st.diskBytes()

	st2, err := newDiskStore(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.diskBytes(); got != total {
		t.Fatalf("rescan tracked %d bytes, want %d", got, total)
	}
	st2.mu.Lock()
	st2.maxBytes = 1
	st2.sweepLocked("")
	st2.mu.Unlock()
	if got := st2.diskBytes(); got != 0 {
		t.Fatalf("inherited entries not evictable: %d bytes left", got)
	}
	if _, err := os.Stat(st2.ckptPath(ck)); !os.IsNotExist(err) {
		t.Fatalf("inherited checkpoint slot survived a 1-byte budget (err=%v)", err)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if name := de.Name(); hasSuffix(name, spaceSuffix) {
			t.Fatalf("file %s survived a 1-byte budget", name)
		}
	}
}

// TestDiskStorePinnedCkptMirrorsSurviveSweep pins the shard slots of an
// in-flight sharded assignment the way the coordinator does and forces
// a sweep under budget pressure: the pinned mirror must keep its file
// (the sweeper may re-dispatch from it within a lease TTL) while the
// unpinned mirror is evicted; releasing the pin makes the survivor an
// ordinary victim again.
func TestDiskStorePinnedCkptMirrorsSurviveSweep(t *testing.T) {
	dir := t.TempDir()
	st, err := newDiskStore(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := cacheKey(strings.Repeat("b", 64))
	pinned, victim := shardSlot(base, 0), shardSlot(base, 1)
	st.pinCkpt(pinned)
	for _, k := range []cacheKey{pinned, victim} {
		if err := st.writeCkpt(k, []byte("shard checkpoint")); err != nil {
			t.Fatal(err)
		}
	}

	st.mu.Lock()
	st.maxBytes = 1
	st.sweepLocked("")
	st.mu.Unlock()
	if _, err := os.Stat(st.ckptPath(pinned)); err != nil {
		t.Fatalf("pinned shard mirror evicted: %v", err)
	}
	if _, err := os.Stat(st.ckptPath(victim)); !os.IsNotExist(err) {
		t.Fatalf("unpinned shard mirror survived a 1-byte budget (err=%v)", err)
	}
	if b, err := st.readCkpt(pinned); err != nil || string(b) != "shard checkpoint" {
		t.Fatalf("pinned mirror unreadable mid-pin: %q, %v", b, err)
	}

	st.unpinCkpt(pinned)
	st.mu.Lock()
	st.sweepLocked("")
	st.mu.Unlock()
	if _, err := os.Stat(st.ckptPath(pinned)); !os.IsNotExist(err) {
		t.Fatalf("released mirror not evicted by the next sweep (err=%v)", err)
	}
	if got := st.diskBytes(); got != 0 {
		t.Fatalf("tracked bytes %d after full eviction, want 0", got)
	}
}

// TestServerDiskMaxBytes drives eviction through the public surface:
// a server with a tiny disk budget keeps serving correct spaces while
// old entries fall off disk, and re-serves an evicted key by
// re-enumerating it rather than failing.
func TestServerDiskMaxBytes(t *testing.T) {
	dir := t.TempDir()
	// One cached space for these functions is ~1-3 KB; 4 KB holds one
	// or two but never all three.
	s, ts := newTestServer(t, Config{Dir: dir, DiskMaxBytes: 4 << 10, MemEntries: 1})
	hashes := map[string]string{}
	for name, src := range lruSrcs {
		status, doc, _ := post(t, ts, srcBody(src))
		if status != 200 {
			t.Fatalf("%s: status %d: %v", name, status, doc)
		}
		hashes[name] = doc["space_hash"].(string)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var spaceFiles int
	var onDisk int64
	for _, de := range des {
		if hasSuffix(de.Name(), spaceSuffix) && !hasSuffix(de.Name(), ckptSuffix) {
			fi, _ := de.Info()
			spaceFiles++
			onDisk += fi.Size()
		}
	}
	if spaceFiles >= 3 {
		t.Fatalf("all %d entries on disk; budget evicted nothing", spaceFiles)
	}
	if onDisk > 4<<10 {
		t.Fatalf("%d bytes on disk, budget is %d", onDisk, 4<<10)
	}
	if got := s.store.diskBytes(); got != onDisk {
		t.Fatalf("tracked %d bytes, disk holds %d", got, onDisk)
	}

	// An evicted key is a miss, not an error: it re-enumerates to the
	// same hash. (MemEntries=1 keeps the memory tier from masking the
	// disk miss for at least the oldest key.)
	for name, src := range lruSrcs {
		status, doc, _ := post(t, ts, srcBody(src))
		if status != 200 || doc["space_hash"] != hashes[name] {
			t.Fatalf("%s after eviction: status %d hash %v, want 200 %s",
				name, status, doc["space_hash"], hashes[name])
		}
	}
}

// TestDiskStoreRemoveAccounting checks remove (the corrupt-entry path)
// releases the entry's bytes.
func TestDiskStoreRemoveAccounting(t *testing.T) {
	st, err := newDiskStore(t.TempDir(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := putSpaces(t, st, lruSrcs, []string{"clamp"})
	if st.diskBytes() <= 0 {
		t.Fatal("nothing tracked after put")
	}
	st.remove(keys[0])
	if got := st.diskBytes(); got != 0 {
		t.Fatalf("tracked %d bytes after remove, want 0", got)
	}
	if _, err := os.Stat(filepath.Join(st.dir, string(keys[0])+spaceSuffix)); !os.IsNotExist(err) {
		t.Fatalf("file survived remove (err=%v)", err)
	}
}
