package interp_test

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/mc"
)

func run(t *testing.T, src, fn string, args ...int32) interp.Result {
	t.Helper()
	prog, err := mc.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := interp.Run(prog, fn, args...)
	if err != nil {
		t.Fatalf("run %s: %v", fn, err)
	}
	return res
}

func TestArithmetic(t *testing.T) {
	src := `
int f(int a, int b) {
    return (a + b) * (a - b) / 2 + a % 3;
}`
	got := run(t, src, "f", 10, 4).Ret
	want := (10+4)*(10-4)/2 + 10%3
	if got != int32(want) {
		t.Fatalf("f(10,4) = %d, want %d", got, want)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
int fib(int n) {
    int a = 0;
    int b = 1;
    int i;
    for (i = 0; i < n; i++) {
        int t = a + b;
        a = b;
        b = t;
    }
    return a;
}`
	cases := map[int32]int32{0: 0, 1: 1, 2: 1, 10: 55, 20: 6765}
	for n, want := range cases {
		if got := run(t, src, "fib", n).Ret; got != want {
			t.Errorf("fib(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestRecursionAndCalls(t *testing.T) {
	src := `
int fact(int n) {
    if (n <= 1) return 1;
    return n * fact(n - 1);
}
int twice(int x) { return fact(x) + fact(x); }
`
	if got := run(t, src, "fact", 6).Ret; got != 720 {
		t.Fatalf("fact(6) = %d, want 720", got)
	}
	if got := run(t, src, "twice", 5).Ret; got != 240 {
		t.Fatalf("twice(5) = %d, want 240", got)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	src := `
int a[8] = {5, 1, 4, 1, 5, 9, 2, 6};
int total;
int sum(int n) {
    int i;
    int s = 0;
    for (i = 0; i < n; i++) s += a[i];
    total = s;
    return s;
}`
	res := run(t, src, "sum", 8)
	if res.Ret != 33 {
		t.Fatalf("sum = %d, want 33", res.Ret)
	}
}

func TestLocalArraysAndPointers(t *testing.T) {
	src := `
int rev3(int x, int y, int z) {
    int buf[3];
    int *p;
    buf[0] = x; buf[1] = y; buf[2] = z;
    p = &buf[0];
    return p[2] * 100 + p[1] * 10 + p[0];
}`
	if got := run(t, src, "rev3", 1, 2, 3).Ret; got != 321 {
		t.Fatalf("rev3 = %d, want 321", got)
	}
}

func TestShortCircuit(t *testing.T) {
	src := `
int g;
int bump(int v) { g += 1; return v; }
int f(int a, int b) {
    g = 0;
    if (a && bump(b)) return g + 100;
    return g;
}`
	// a=0: bump never runs, g stays 0.
	if got := run(t, src, "f", 0, 1).Ret; got != 0 {
		t.Fatalf("f(0,1) = %d, want 0", got)
	}
	// a=1,b=1: bump runs once.
	if got := run(t, src, "f", 1, 1).Ret; got != 101 {
		t.Fatalf("f(1,1) = %d, want 101", got)
	}
	// a=1,b=0: bump runs, condition false.
	if got := run(t, src, "f", 1, 0).Ret; got != 1 {
		t.Fatalf("f(1,0) = %d, want 1", got)
	}
}

func TestWhileBreakContinue(t *testing.T) {
	src := `
int f(int n) {
    int i = 0;
    int s = 0;
    while (1) {
        i++;
        if (i > n) break;
        if (i % 2 == 0) continue;
        s += i;
    }
    return s;
}`
	if got := run(t, src, "f", 10).Ret; got != 25 { // 1+3+5+7+9
		t.Fatalf("f(10) = %d, want 25", got)
	}
}

func TestDoWhile(t *testing.T) {
	src := `
int f(int n) {
    int s = 0;
    do {
        s += n;
        n--;
    } while (n > 0);
    return s;
}`
	if got := run(t, src, "f", 4).Ret; got != 10 {
		t.Fatalf("f(4) = %d, want 10", got)
	}
	if got := run(t, src, "f", 0).Ret; got != 0 { // body runs once
		t.Fatalf("f(0) = %d, want 0", got)
	}
}

func TestBitOps(t *testing.T) {
	src := `
int f(int x) {
    return ((x << 3) ^ (x >> 1)) | (x & 0x0F0) | ~x;
}`
	x := int32(0x1234)
	want := ((x << 3) ^ (x >> 1)) | (x & 0x0F0) | ^x
	if got := run(t, src, "f", x).Ret; got != want {
		t.Fatalf("f = %#x, want %#x", got, want)
	}
}

func TestTraceBuiltin(t *testing.T) {
	src := `
void f(int n) {
    int i;
    for (i = 0; i < n; i++) __trace(i * i);
}`
	res := run(t, src, "f", 4)
	want := []int32{0, 1, 4, 9}
	if len(res.Trace) != len(want) {
		t.Fatalf("trace = %v, want %v", res.Trace, want)
	}
	for i := range want {
		if res.Trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", res.Trace, want)
		}
	}
}

func TestCallClobbersCallerSave(t *testing.T) {
	// The value crossing the call must be spilled by codegen; if the
	// interpreter failed to poison caller-save registers, a missed
	// spill would go undetected.
	src := `
int id(int x) { return x; }
int f(int a, int b) { return id(a) + id(b) + a; }
`
	if got := run(t, src, "f", 7, 9).Ret; got != 23 {
		t.Fatalf("f(7,9) = %d, want 23", got)
	}
}

func TestMemoryPersistsAcrossRuns(t *testing.T) {
	src := `
int counter;
int inc(void) { counter += 1; return counter; }
`
	prog, err := mc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(prog, interp.Limits{})
	for want := int32(1); want <= 3; want++ {
		res, err := m.Run("inc")
		if err != nil {
			t.Fatal(err)
		}
		if res.Ret != want {
			t.Fatalf("inc run %d = %d", want, res.Ret)
		}
	}
}

func TestStepLimit(t *testing.T) {
	src := `void f(void) { while (1) {} }`
	prog, err := mc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(prog, interp.Limits{MaxSteps: 1000})
	if _, err := m.Run("f"); err == nil {
		t.Fatal("expected step-limit error")
	}
}

func TestDivisionByZeroError(t *testing.T) {
	src := `int f(int a, int b) { return a / b; }`
	prog, err := mc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := interp.Run(prog, "f", 1, 0); err == nil {
		t.Fatal("expected division-by-zero error")
	}
}
