// Package interp executes RTL programs. It serves two roles in the
// reproduction:
//
//   - it measures dynamic instruction counts, the performance metric of
//     Table 7 (the paper likewise uses dynamic counts as "a crude
//     approximation of execution efficiency", Section 7), and
//   - it is the oracle for differential testing: every function
//     instance produced by any optimization phase ordering must behave
//     exactly like the unoptimized instance.
//
// The interpreter runs RTL at any optimization stage: pseudo registers
// (before the compulsory register assignment) and hardware registers
// are both supported, and each call activates a fresh register file.
// To expose miscompilations, a call deliberately clobbers the
// caller-save registers and the condition codes with a poison value.
package interp

import (
	"fmt"

	"repro/internal/rtl"
)

// poison is written into caller-save registers at calls so that any
// instance that wrongly relies on a value surviving a call misbehaves
// deterministically.
const poison = int32(-559038737) // 0xDEADBEEF

// Memory layout of the simulated address space.
const (
	globalBase = 0x0001_0000
	stackTop   = 0x0100_0000
)

// Limits bound an execution.
type Limits struct {
	// MaxSteps is the maximum number of executed instructions before
	// the run is aborted (0 means the default of 50 million).
	MaxSteps int64
	// MaxDepth is the maximum call depth (0 means 256).
	MaxDepth int
}

// Result reports the outcome of an execution.
type Result struct {
	// Ret is the value returned by the entry function (r0).
	Ret int32
	// Steps is the number of dynamically executed instructions.
	Steps int64
	// Trace accumulates the arguments of __trace builtin calls, giving
	// programs an observable output stream for differential testing.
	Trace []int32
}

// Machine executes functions of one RTL program against a shared
// memory image. Create one with New, then call Run (possibly several
// times; memory persists between runs, as with successive calls into a
// loaded program image).
type Machine struct {
	prog    *rtl.Program
	mem     map[uint32]int32
	gaddr   map[string]uint32
	limits  Limits
	steps   int64
	trace   []int32
	callers int

	// Block-level profiling (Section 7 of the paper: block execution
	// frequencies let one execution stand in for every instance with
	// the same control flow).
	profName   string
	profCounts []int64
}

// New prepares a machine for the program: globals are laid out and
// initialized, and the stack is empty.
func New(prog *rtl.Program, limits Limits) *Machine {
	if limits.MaxSteps == 0 {
		limits.MaxSteps = 50_000_000
	}
	if limits.MaxDepth == 0 {
		limits.MaxDepth = 256
	}
	m := &Machine{
		prog:   prog,
		mem:    make(map[uint32]int32),
		gaddr:  make(map[string]uint32),
		limits: limits,
	}
	addr := uint32(globalBase)
	for _, g := range prog.Globals {
		m.gaddr[g.Name] = addr
		for i, v := range g.Init {
			m.mem[(addr+uint32(i*4))>>2] = v
		}
		addr += uint32(g.Words * 4)
		addr = (addr + 15) &^ 15
	}
	return m
}

// GlobalAddr returns the simulated address of a global.
func (m *Machine) GlobalAddr(name string) (uint32, bool) {
	a, ok := m.gaddr[name]
	return a, ok
}

// ReadWord returns the word at the given simulated address.
func (m *Machine) ReadWord(addr uint32) int32 { return m.mem[addr>>2] }

// WriteWord stores a word at the given simulated address.
func (m *Machine) WriteWord(addr uint32, v int32) { m.mem[addr>>2] = v }

// ReadGlobal returns word index i of a named global.
func (m *Machine) ReadGlobal(name string, i int32) int32 {
	return m.ReadWord(m.gaddr[name] + uint32(i*4))
}

// GlobalsSnapshot returns the current contents of every global, used
// by differential tests to compare whole-memory effects.
func (m *Machine) GlobalsSnapshot() map[string][]int32 {
	out := make(map[string][]int32, len(m.prog.Globals))
	for _, g := range m.prog.Globals {
		words := make([]int32, g.Words)
		for i := int32(0); i < g.Words; i++ {
			words[i] = m.ReadGlobal(g.Name, i)
		}
		out[g.Name] = words
	}
	return out
}

// Profile enables block-level execution counting for the named
// function: every entry into one of its basic blocks (by layout
// position) is tallied across all activations until the next Profile
// call. BlockCounts returns the tallies.
func (m *Machine) Profile(funcName string) {
	m.profName = funcName
	f := m.prog.Func(funcName)
	if f != nil {
		m.profCounts = make([]int64, len(f.Blocks))
	} else {
		m.profCounts = nil
	}
}

// BlockCounts returns the per-block (layout position) execution counts
// collected since Profile was called.
func (m *Machine) BlockCounts() []int64 {
	return append([]int64(nil), m.profCounts...)
}

// Run executes the named function with up to four arguments and
// returns the result. Memory effects persist in the machine.
func (m *Machine) Run(name string, args ...int32) (Result, error) {
	if len(args) > 4 {
		return Result{}, fmt.Errorf("interp: at most 4 arguments supported, got %d", len(args))
	}
	f := m.prog.Func(name)
	if f == nil {
		return Result{}, fmt.Errorf("interp: no function %q", name)
	}
	m.steps = 0
	m.trace = m.trace[:0]
	ret, err := m.call(f, args, stackTop)
	if err != nil {
		return Result{}, err
	}
	return Result{Ret: ret, Steps: m.steps, Trace: append([]int32(nil), m.trace...)}, nil
}

// frame is the per-activation register file.
type frame struct {
	regs     []int32
	icA, icB int32
}

func (m *Machine) call(f *rtl.Func, args []int32, sp uint32) (int32, error) {
	m.callers++
	defer func() { m.callers-- }()
	if m.callers > m.limits.MaxDepth {
		return 0, fmt.Errorf("interp: call depth exceeded in %q", f.Name)
	}

	// The frame sits below the caller's stack pointer; add slack so
	// spill slots appended by register assignment always fit.
	frameSP := sp - uint32(f.FrameSize) - 64
	fr := frame{regs: make([]int32, int(f.NextPseudo)+1)}
	for i, a := range args {
		fr.regs[i] = a
	}
	fr.regs[rtl.RegSP] = int32(frameSP)

	idx := make(map[int]int, len(f.Blocks))
	for i, b := range f.Blocks {
		idx[b.ID] = i
	}

	get := func(o rtl.Operand) int32 {
		if o.Kind == rtl.OperImm {
			return o.Imm
		}
		return fr.regs[o.Reg]
	}

	profiled := f.Name == m.profName

	bpos := 0
	for {
		if bpos >= len(f.Blocks) {
			return 0, fmt.Errorf("interp: %q fell off the end of the function", f.Name)
		}
		if profiled && bpos < len(m.profCounts) {
			m.profCounts[bpos]++
		}
		b := f.Blocks[bpos]
		transferred := false
		for i := range b.Instrs {
			in := &b.Instrs[i]
			m.steps++
			if m.steps > m.limits.MaxSteps {
				return 0, fmt.Errorf("interp: step limit exceeded in %q", f.Name)
			}
			switch in.Op {
			case rtl.OpNop:
			case rtl.OpMov:
				fr.regs[in.Dst] = get(in.A)
			case rtl.OpMovHi:
				a, ok := m.gaddr[in.Sym]
				if !ok {
					return 0, fmt.Errorf("interp: %q references unknown global %q", f.Name, in.Sym)
				}
				fr.regs[in.Dst] = int32(a &^ 0xFFFF)
			case rtl.OpAddLo:
				a, ok := m.gaddr[in.Sym]
				if !ok {
					return 0, fmt.Errorf("interp: %q references unknown global %q", f.Name, in.Sym)
				}
				fr.regs[in.Dst] = get(in.A) + int32(a&0xFFFF)
			case rtl.OpAdd:
				fr.regs[in.Dst] = get(in.A) + get(in.B)
			case rtl.OpSub:
				fr.regs[in.Dst] = get(in.A) - get(in.B)
			case rtl.OpRsb:
				fr.regs[in.Dst] = get(in.B) - get(in.A)
			case rtl.OpMul:
				fr.regs[in.Dst] = get(in.A) * get(in.B)
			case rtl.OpDiv:
				d := get(in.B)
				if d == 0 {
					return 0, fmt.Errorf("interp: division by zero in %q", f.Name)
				}
				fr.regs[in.Dst] = get(in.A) / d
			case rtl.OpRem:
				d := get(in.B)
				if d == 0 {
					return 0, fmt.Errorf("interp: division by zero in %q", f.Name)
				}
				fr.regs[in.Dst] = get(in.A) % d
			case rtl.OpAnd:
				fr.regs[in.Dst] = get(in.A) & get(in.B)
			case rtl.OpOr:
				fr.regs[in.Dst] = get(in.A) | get(in.B)
			case rtl.OpXor:
				fr.regs[in.Dst] = get(in.A) ^ get(in.B)
			case rtl.OpShl:
				fr.regs[in.Dst] = get(in.A) << (uint32(get(in.B)) & 31)
			case rtl.OpShr:
				fr.regs[in.Dst] = int32(uint32(get(in.A)) >> (uint32(get(in.B)) & 31))
			case rtl.OpSar:
				fr.regs[in.Dst] = get(in.A) >> (uint32(get(in.B)) & 31)
			case rtl.OpNeg:
				fr.regs[in.Dst] = -get(in.A)
			case rtl.OpNot:
				fr.regs[in.Dst] = ^get(in.A)
			case rtl.OpLoad:
				fr.regs[in.Dst] = m.mem[uint32(get(in.A)+in.Disp)>>2]
			case rtl.OpStore:
				m.mem[uint32(get(in.B)+in.Disp)>>2] = get(in.A)
			case rtl.OpCmp:
				fr.icA, fr.icB = get(in.A), get(in.B)
			case rtl.OpBranch:
				if in.Rel.Eval(fr.icA, fr.icB) {
					bpos = idx[in.Target]
					transferred = true
				}
			case rtl.OpJmp:
				bpos = idx[in.Target]
				transferred = true
			case rtl.OpRet:
				return fr.regs[rtl.RegR0], nil
			case rtl.OpCall:
				ret, err := m.dispatch(f, in, fr.regs, frameSP)
				if err != nil {
					return 0, err
				}
				// Clobber caller-save state, then deliver the result.
				for _, r := range rtl.CallerSave {
					fr.regs[r] = poison
				}
				fr.icA, fr.icB = poison, poison
				fr.regs[rtl.RegR0] = ret
			default:
				return 0, fmt.Errorf("interp: %q: unhandled op %v", f.Name, in.Op)
			}
			if transferred {
				break
			}
		}
		if !transferred {
			bpos++
		}
	}
}

// dispatch routes a call to a program function or a builtin.
func (m *Machine) dispatch(caller *rtl.Func, in *rtl.Instr, regs []int32, sp uint32) (int32, error) {
	args := make([]int32, in.NArgs)
	for i := range args {
		args[i] = regs[i]
	}
	if callee := m.prog.Func(in.Sym); callee != nil {
		return m.call(callee, args, sp)
	}
	switch in.Sym {
	case "__trace":
		if len(args) > 0 {
			m.trace = append(m.trace, args[0])
		}
		return 0, nil
	}
	return 0, fmt.Errorf("interp: %q calls unknown function %q", caller.Name, in.Sym)
}

// Run is a convenience wrapper: build a fresh machine, execute the
// named function once and return the result.
func Run(prog *rtl.Program, name string, args ...int32) (Result, error) {
	return New(prog, Limits{}).Run(name, args...)
}
