package interp_test

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/mc"
)

// TestBlockProfiling checks the per-block execution counts that power
// the control-flow-class dynamic count inference.
func TestBlockProfiling(t *testing.T) {
	src := `
int f(int n) {
    int i;
    int s = 0;
    for (i = 0; i < n; i++) s += i;
    return s;
}`
	prog, err := mc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(prog, interp.Limits{})
	m.Profile("f")
	res, err := m.Run("f", 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 10 {
		t.Fatalf("f(5) = %d, want 10", res.Ret)
	}
	counts := m.BlockCounts()
	f := prog.Func("f")
	if len(counts) != len(f.Blocks) {
		t.Fatalf("got %d counts for %d blocks", len(counts), len(f.Blocks))
	}
	// The entry block runs once; the sum over (count * block size)
	// must equal the function's share of the dynamic instructions.
	if counts[0] != 1 {
		t.Fatalf("entry block executed %d times", counts[0])
	}
	var total int64
	for i, c := range counts {
		total += c * int64(len(f.Blocks[i].Instrs))
	}
	if total != res.Steps {
		t.Fatalf("block-count total %d != executed steps %d", total, res.Steps)
	}
	// The loop head runs n+1 times: find a block with count 6.
	found := false
	for _, c := range counts {
		if c == 6 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no block executed n+1 times: %v", counts)
	}
}

// TestProfilingAccumulatesAcrossActivations: recursive and repeated
// calls all tally into the same counters.
func TestBlockProfilingAccumulates(t *testing.T) {
	src := `
int fact(int n) {
    if (n <= 1) return 1;
    return n * fact(n - 1);
}`
	prog, err := mc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(prog, interp.Limits{})
	m.Profile("fact")
	if _, err := m.Run("fact", 5); err != nil {
		t.Fatal(err)
	}
	counts := m.BlockCounts()
	if counts[0] != 5 { // five activations enter the entry block
		t.Fatalf("entry block executed %d times, want 5", counts[0])
	}
}

// TestRunErrors covers the interpreter's failure modes.
func TestRunErrors(t *testing.T) {
	src := `
int deep(int n) { return deep(n + 1); }
int callmissing(void) { return nosuch(1); }
`
	prog, err := mc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := interp.New(prog, interp.Limits{MaxDepth: 16}).Run("deep", 0); err == nil {
		t.Error("unbounded recursion not caught")
	}
	if _, err := interp.Run(prog, "callmissing"); err == nil {
		t.Error("call to unknown function not caught")
	}
	if _, err := interp.Run(prog, "nosuchentry"); err == nil {
		t.Error("unknown entry function not caught")
	}
	if _, err := interp.Run(prog, "deep", 1, 2, 3, 4, 5); err == nil {
		t.Error("more than four arguments not caught")
	}
}
