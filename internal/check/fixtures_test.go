package check_test

import (
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/rtl"
)

// parse builds a fixture function from the paper's textual notation.
func parse(t *testing.T, src string) *rtl.Func {
	t.Helper()
	f, err := rtl.ParseFunc(src)
	if err != nil {
		t.Fatalf("fixture does not parse: %v\n%s", err, src)
	}
	return f
}

// requireRule asserts that at least one diagnostic with the given rule
// and severity fired, and that no *other* error-tier rule fired, so a
// fixture proves exactly the rule it was written for.
func requireRule(t *testing.T, diags []check.Diagnostic, rule string, sev check.Severity) {
	t.Helper()
	hit := false
	for _, d := range diags {
		if d.Rule == rule && d.Severity == sev {
			hit = true
		} else if d.Severity == check.SevError && d.Rule != rule {
			t.Errorf("unexpected extra error %s", d)
		}
	}
	if !hit {
		t.Fatalf("rule %s (%s) did not fire; got %d diagnostics: %v", rule, sev, len(diags), diags)
	}
}

// The deliberately broken fixtures, one per verifier rule.

func TestFixtureUseBeforeDef(t *testing.T) {
	// r[2] is not an argument register of this 1-argument function and
	// nothing assigns it before the add reads it.
	f := parse(t, `
broken(1):
L0:
	r[1]=r[0]+r[2];
	RET r[1];
`)
	requireRule(t, check.Run(f, check.Options{}), check.RuleUseBeforeDef, check.SevError)
}

func TestFixtureUseBeforeDefOnePath(t *testing.T) {
	// r[1] is assigned on the fall-through path only; the path that
	// takes the branch reaches the read uninitialized.
	f := parse(t, `
broken(1):
L0:
	IC=r[0]?0;
	PC=IC==0,L2;
L1:
	r[1]=5;
L2:
	RET r[1];
`)
	requireRule(t, check.Run(f, check.Options{}), check.RuleUseBeforeDef, check.SevError)
}

func TestFixtureCondCodeUnset(t *testing.T) {
	// A branch with no compare anywhere.
	f := parse(t, `
broken(0):
L0:
	PC=IC==0,L1;
L1:
	RET;
`)
	requireRule(t, check.Run(f, check.Options{}), check.RuleCondCode, check.SevError)
}

func TestFixtureCondCodeClobberedByCall(t *testing.T) {
	// The compare reaches the branch, but the intervening call
	// clobbers the condition codes.
	f := parse(t, `
broken(2):
L0:
	IC=r[0]?r[1];
	CALL helper(0);
	PC=IC<0,L1;
L1:
	RET;
`)
	requireRule(t, check.Run(f, check.Options{}), check.RuleCondCode, check.SevError)
}

func TestFixtureCondCodeOnePathClobbered(t *testing.T) {
	// The codes are valid on the branch-taken path but clobbered on
	// the fall-through path; the meet over paths must catch it.
	f := parse(t, `
broken(1):
L0:
	IC=r[0]?0;
	PC=IC==0,L2;
L1:
	CALL helper(0);
L2:
	PC=IC<0,L3;
L3:
	RET;
`)
	requireRule(t, check.Run(f, check.Options{}), check.RuleCondCode, check.SevError)
}

func TestFixtureImmRange(t *testing.T) {
	// StrongARM logical immediates are 8-bit; 4096 is unencodable.
	f := parse(t, `
broken(1):
L0:
	r[1]=r[0]&4096;
	RET r[1];
`)
	requireRule(t, check.Run(f, check.Options{}), check.RuleImmRange, check.SevError)
}

func TestFixtureReservedReg(t *testing.T) {
	// Writing the stack pointer as an ordinary destination.
	f := parse(t, `
broken(0):
L0:
	r[sp]=1;
	RET;
`)
	requireRule(t, check.Run(f, check.Options{}), check.RuleReservedReg, check.SevError)
}

func TestFixtureFrameBounds(t *testing.T) {
	// One 4-byte slot at offset 0; the load addresses offset 8.
	f := rtl.NewFunc("broken", 0, true)
	f.AddSlot("x", 4, true)
	entry := f.Entry()
	entry.Instrs = append(entry.Instrs,
		rtl.NewLoad(rtl.RegR0, rtl.RegSP, 8),
		rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)},
	)
	f.RegAssigned = true
	requireRule(t, check.Run(f, check.Options{}), check.RuleFrameBounds, check.SevError)
}

func TestFixtureCalleeSaveNeverSaved(t *testing.T) {
	f := parse(t, `
broken(0):
L0:
	r[4]=7;
	r[0]=r[4];
	RET r[0];
`)
	f.EntryExitFixed = true
	requireRule(t, check.Run(f, check.Options{}), check.RuleCalleeSave, check.SevError)
}

func TestFixtureCalleeSaveMissingRestore(t *testing.T) {
	// r4 is saved on entry but the return path never reloads it.
	f := rtl.NewFunc("broken", 0, true)
	off := f.AddSlot(".save_r4", 4, false)
	entry := f.Entry()
	entry.Instrs = append(entry.Instrs,
		rtl.NewStore(rtl.RegR4, rtl.RegSP, off),
		rtl.NewMov(rtl.RegR4, rtl.Imm(7)),
		rtl.NewMov(rtl.RegR0, rtl.R(rtl.RegR4)),
		rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)},
	)
	f.RegAssigned = true
	f.EntryExitFixed = true
	requireRule(t, check.Run(f, check.Options{}), check.RuleCalleeSave, check.SevError)
}

func TestFixtureCalleeSaveCorrect(t *testing.T) {
	// The well-formed counterpart: save on entry, restore before the
	// return — zero errors.
	f := rtl.NewFunc("good", 0, true)
	off := f.AddSlot(".save_r4", 4, false)
	entry := f.Entry()
	entry.Instrs = append(entry.Instrs,
		rtl.NewStore(rtl.RegR4, rtl.RegSP, off),
		rtl.NewMov(rtl.RegR4, rtl.Imm(7)),
		rtl.NewMov(rtl.RegR0, rtl.R(rtl.RegR4)),
		rtl.NewLoad(rtl.RegR4, rtl.RegSP, off),
		rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)},
	)
	f.RegAssigned = true
	f.EntryExitFixed = true
	if errs := check.Errors(check.Run(f, check.Options{})); len(errs) != 0 {
		t.Fatalf("clean fixture produced errors: %v", errs)
	}
}

func TestFixtureStructure(t *testing.T) {
	// A branch in dead code targeting dead code: rejected by the
	// extended rtl.Validate tier, surfaced as a structure diagnostic.
	f := parse(t, `
broken(0):
L0:
	PC=L2;
L1:
	PC=L1;
L2:
	RET;
`)
	if err := rtl.Validate(f); err == nil {
		t.Fatal("Validate accepted a branch targeting an unreachable block")
	} else if !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("Validate rejected the fixture for the wrong reason: %v", err)
	}
	requireRule(t, check.Run(f, check.Options{}), check.RuleStructure, check.SevError)
}

func TestFixtureLints(t *testing.T) {
	// L1 is unreachable (but targets live code, so Validate accepts
	// it); L0 jumps to its fall-through successor.
	f := parse(t, `
messy(0):
L0:
	PC=L2;
L1:
	r[0]=1;
	PC=L2;
L2:
	RET;
`)
	diags := check.Run(f, check.Options{Lints: true})
	if errs := check.Errors(diags); len(errs) != 0 {
		t.Fatalf("lint fixture produced errors: %v", errs)
	}
	want := map[string]bool{check.RuleUnreachable: false, check.RuleJumpNext: false}
	for _, d := range diags {
		if _, ok := want[d.Rule]; ok {
			want[d.Rule] = true
		}
	}
	for rule, hit := range want {
		if !hit {
			t.Errorf("lint %s did not fire: %v", rule, diags)
		}
	}
}

func TestFixtureSelfLoopLint(t *testing.T) {
	f := parse(t, `
spin(0):
L0:
	r[0]=0;
L1:
	r[0]=r[0]+1;
	PC=L1;
L2:
	RET;
`)
	diags := check.Run(f, check.Options{Lints: true})
	found := false
	for _, d := range diags {
		if d.Rule == check.RuleSelfLoop {
			found = true
		}
	}
	if !found {
		t.Fatalf("self-loop lint did not fire: %v", diags)
	}
}

func TestFixtureEmptyBlockLint(t *testing.T) {
	f := parse(t, `
holes(0):
L0:
	r[0]=0;
L1:
L2:
	RET r[0];
`)
	diags := check.Run(f, check.Options{Lints: true})
	found := false
	for _, d := range diags {
		if d.Rule == check.RuleEmptyBlock {
			found = true
		}
	}
	if !found {
		t.Fatalf("empty-block lint did not fire: %v", diags)
	}
}

// TestDiagnosticString pins the report format tooling greps for.
func TestDiagnosticString(t *testing.T) {
	d := check.Diagnostic{
		Fn: "f", Block: 2, Instr: 3,
		Rule: check.RuleCondCode, Severity: check.SevError, Msg: "boom",
	}
	if got, want := d.String(), "f: L2[3]: cond-code: boom (error)"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	fn := check.Diagnostic{Fn: "f", Block: -1, Instr: -1, Rule: check.RuleCalleeSave, Severity: check.SevWarn, Msg: "m"}
	if got, want := fn.String(), "f: callee-save: m (warning)"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
