package check_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/check"
	"repro/internal/driver"
	"repro/internal/machine"
	"repro/internal/mibench"
	"repro/internal/opt"
)

// failOnErrors reports every error-tier diagnostic through t.
func failOnErrors(t *testing.T, label string, diags []check.Diagnostic) {
	t.Helper()
	for _, d := range check.Errors(diags) {
		t.Errorf("%s: %s", label, d)
	}
}

// TestCorpusUnoptimizedClean verifies the naive code generator emits
// verifier-clean RTL for the whole benchmark suite.
func TestCorpusUnoptimizedClean(t *testing.T) {
	funcs, err := mibench.AllFunctions()
	if err != nil {
		t.Fatal(err)
	}
	for _, tf := range funcs {
		failOnErrors(t, tf.Bench+"/"+tf.Func.Name, check.Run(tf.Func, check.Options{}))
	}
}

// TestEveryPhaseEveryFunctionClean applies each of the fifteen phases
// individually to every mibench function and requires zero error-tier
// diagnostics afterwards — the per-phase invariant the exhaustive
// enumeration rests on.
func TestEveryPhaseEveryFunctionClean(t *testing.T) {
	funcs, err := mibench.AllFunctions()
	if err != nil {
		t.Fatal(err)
	}
	d := machine.StrongARM()
	for _, p := range opt.All() {
		p := p
		t.Run(string(p.ID()), func(t *testing.T) {
			for _, tf := range funcs {
				f := tf.Func.Clone()
				st := opt.State{}
				opt.Attempt(f, &st, p, d)
				failOnErrors(t, fmt.Sprintf("%s/%s after %c", tf.Bench, tf.Func.Name, p.ID()),
					check.Run(f, check.Options{Machine: d}))
			}
		})
	}
}

// TestRandomSequencesClean drives random phase orderings over the
// corpus, verifying after every step. This is the static mirror of the
// interpreter-based differential tests.
func TestRandomSequencesClean(t *testing.T) {
	funcs, err := mibench.AllFunctions()
	if err != nil {
		t.Fatal(err)
	}
	trials := 8
	if testing.Short() {
		trials = 2
	}
	d := machine.StrongARM()
	all := opt.All()
	rng := rand.New(rand.NewSource(0xC6C6))
	for _, tf := range funcs {
		for trial := 0; trial < trials; trial++ {
			f := tf.Func.Clone()
			st := opt.State{}
			applied := ""
			for i := 0; i < 10; i++ {
				p := all[rng.Intn(len(all))]
				if opt.Attempt(f, &st, p, d) {
					applied += string(p.ID())
				}
			}
			failOnErrors(t, fmt.Sprintf("%s/%s after %q", tf.Bench, tf.Func.Name, applied),
				check.Run(f, check.Options{Machine: d}))
			if t.Failed() {
				t.FailNow()
			}
		}
	}
}

// TestBatchCompileClean runs the full batch compiler — including the
// compulsory entry/exit fixup — over the corpus and requires the
// finished functions to verify cleanly, callee-save rule included.
func TestBatchCompileClean(t *testing.T) {
	d := machine.StrongARM()
	for _, p := range mibench.All() {
		prog, err := p.Compile()
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range prog.Funcs {
			driver.Batch(f, d)
			if !f.EntryExitFixed {
				t.Fatalf("%s/%s: Batch did not mark EntryExitFixed", p.Name, f.Name)
			}
			failOnErrors(t, p.Name+"/"+f.Name, check.Run(f, check.Options{Machine: d}))
		}
	}
}
