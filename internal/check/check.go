// Package check is the semantic RTL verifier: a dataflow-driven static
// analysis layer that goes beyond the structural rtl.Validate tier and
// catches miscompiles at the phase where they happen. The whole result
// of the reproduced study rests on every candidate phase being
// semantics-preserving — one silently miscompiling phase corrupts the
// enumerated DAG and every statistic mined from it — so the verifier is
// wired in as a post-phase hook (opt.PostCheck), as a per-node recorder
// in the exhaustive search (search.Options.Check) and as a standalone
// lint tool (cmd/rtllint).
//
// Two tiers of findings:
//
//   - errors (SevError) are invariant violations no phase may produce:
//     a register read before any path assigns it, a conditional branch
//     with stale or clobbered condition codes, an instruction the
//     machine cannot encode, misuse of the reserved registers, a frame
//     access outside the allocated slots, a clobbered callee-save
//     register after the entry/exit fixup;
//
//   - warnings (SevWarn) are hygiene lints: unreachable blocks, empty
//     blocks, jumps to the fall-through successor, blocks that loop on
//     themselves with no exit, dead stores and redundant moves. These
//     states are legal — entire candidate phases exist to clean them
//     up — so they never fail the hooks, but cmd/rtllint surfaces them.
//
// The flow-sensitive rules (must-assigned registers, condition-code
// validity, liveness, available copies) are instances of the
// internal/dataflow solver rather than hand-rolled fixpoints, and every
// diagnostic on a reachable block carries a path witness: a concrete
// block trace through the CFG demonstrating the finding (the path along
// which the register arrives unassigned, the condition codes arrive
// invalid, or the stored value dies). cmd/rtllint renders witnesses in
// both its human and -json output.
package check

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/dataflow"
	"repro/internal/machine"
	"repro/internal/rtl"
	"repro/internal/telemetry"
)

// Severity grades a diagnostic.
type Severity uint8

const (
	// SevError marks a semantic invariant violation: the function is
	// miscompiled or unencodable.
	SevError Severity = iota
	// SevWarn marks a hygiene finding that a cleanup phase could
	// remove but that does not threaten correctness.
	SevWarn
)

// String renders the severity for reports.
func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// MarshalJSON renders the severity as its report string, so the
// rtllint -json stream says "error"/"warning" rather than 0/1.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses the severity strings MarshalJSON emits.
func (s *Severity) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"error"`:
		*s = SevError
	case `"warning"`:
		*s = SevWarn
	default:
		return fmt.Errorf("check: unknown severity %s", b)
	}
	return nil
}

// Rule identifiers, one per verifier rule, so tooling can aggregate
// findings and tests can assert that the intended rule fired.
const (
	// RuleStructure wraps an rtl.Validate failure; when it fires the
	// deeper analyses are skipped (they assume a well-formed CFG).
	RuleStructure = "structure"
	// RuleUseBeforeDef fires when some path from the entry reaches a
	// read of a pseudo or hardware register that no instruction on the
	// path has assigned. The entry seeds the argument registers
	// r0..r3 (as many as the function takes) and the stack pointer.
	RuleUseBeforeDef = "use-before-def"
	// RuleCondCode fires when a conditional branch executes without a
	// reaching compare on every path: the condition codes are either
	// never set or clobbered by an intervening call.
	RuleCondCode = "cond-code"
	// RuleImmRange fires when the target machine cannot encode an
	// instruction (immediate range, operand form).
	RuleImmRange = "imm-range"
	// RuleReservedReg fires on misuse of the reserved registers:
	// writing the stack pointer (r13), link register (r14) or program
	// counter (r15) as an ordinary destination, reading r15 or r14 as
	// an operand, or touching the condition codes outside a compare.
	RuleReservedReg = "reserved-reg"
	// RuleFrameBounds fires when a stack-pointer-relative load or
	// store falls outside every allocated frame slot.
	RuleFrameBounds = "frame-bounds"
	// RuleCalleeSave fires, after the compulsory entry/exit fixup,
	// when a modified callee-save register is not saved on entry and
	// restored before every return.
	RuleCalleeSave = "callee-save"
	// RuleUnreachable flags blocks unreachable from the entry (the
	// remove-unreachable phase 'd' deletes them).
	RuleUnreachable = "cfg-unreachable"
	// RuleEmptyBlock flags blocks with no instructions (the implicit
	// cleanup pass normally removes them).
	RuleEmptyBlock = "cfg-empty-block"
	// RuleJumpNext flags jumps to the fall-through successor (the
	// useless-jump-removal phase 'u' deletes them).
	RuleJumpNext = "cfg-jump-next"
	// RuleSelfLoop flags blocks whose only successor is themselves —
	// an inescapable loop.
	RuleSelfLoop = "cfg-self-loop"
	// RuleDeadStore flags assignments whose value is never read: the
	// destination is dead immediately after the instruction (the dead
	// assignment elimination phase 'h' removes them).
	RuleDeadStore = "dead-store"
	// RuleRedundantMove flags register moves that re-establish a copy
	// already available on every path (or copy a register to itself);
	// common subexpression elimination 'c' removes them.
	RuleRedundantMove = "redundant-move"
)

// Diagnostic is one verifier finding, structured so tooling can
// aggregate findings rather than fail on the first error. The JSON
// field names are the rtllint -json wire format.
type Diagnostic struct {
	// Fn is the function name.
	Fn string `json:"fn"`
	// Block is the block ID (the L-label), or -1 for function-level
	// findings.
	Block int `json:"block"`
	// Instr is the instruction index within the block, or -1 for
	// block-level findings.
	Instr int `json:"instr"`
	// Rule is the Rule* identifier that fired.
	Rule string `json:"rule"`
	// Severity grades the finding.
	Severity Severity `json:"severity"`
	// Msg is the human-readable explanation.
	Msg string `json:"msg"`
	// Witness is the finding's CFG path witness as a sequence of block
	// IDs: a concrete control-flow path demonstrating the diagnosis
	// (entry to the fault for path-sensitive rules, the store to an
	// exit for dead stores). Empty when no path applies — unreachable
	// code has no witness by definition.
	Witness []int `json:"witness,omitempty"`
}

// String renders the diagnostic as "fn: L2[3]: rule: msg (severity)".
func (d Diagnostic) String() string {
	loc := d.Fn
	if d.Block >= 0 {
		loc += fmt.Sprintf(": L%d", d.Block)
		if d.Instr >= 0 {
			loc += fmt.Sprintf("[%d]", d.Instr)
		}
	}
	return fmt.Sprintf("%s: %s: %s (%s)", loc, d.Rule, d.Msg, d.Severity)
}

// Metrics, when non-nil, tags every verification: a check.verify.calls
// counter, a check.verify.duration_ns histogram, and one
// check.finding.<rule> counter per diagnostic rule that fires. Install
// before concurrent use (the search calls Run from its worker pool).
var Metrics *VerifyMetrics

// VerifyMetrics is the verifier's instrument bundle.
type VerifyMetrics struct {
	reg   *telemetry.Registry
	calls *telemetry.Counter
	dur   *telemetry.Histogram
}

// NewVerifyMetrics registers the verifier instruments on reg.
func NewVerifyMetrics(reg *telemetry.Registry) *VerifyMetrics {
	return &VerifyMetrics{
		reg:   reg,
		calls: reg.Counter("check.verify.calls"),
		dur:   reg.Histogram("check.verify.duration_ns"),
	}
}

// observe records one verification and its findings. Rule counters go
// through the registry (a mutexed map lookup) because the rule set is
// open-ended; findings are rare enough that this never shows up next
// to the dataflow analyses themselves.
func (m *VerifyMetrics) observe(began time.Time, diags []Diagnostic) {
	m.calls.Inc()
	m.dur.ObserveSince(began)
	for _, d := range diags {
		m.reg.Counter("check.finding." + d.Rule).Inc()
	}
}

// Options configure a verification run.
type Options struct {
	// Machine is the target description used for encoding legality
	// (default: machine.StrongARM()).
	Machine *machine.Desc
	// Lints additionally emits the SevWarn CFG hygiene findings.
	Lints bool
}

// Run verifies a single function and returns every finding, ordered by
// block layout position and instruction index. A structurally invalid
// function yields the single RuleStructure diagnostic.
func Run(f *rtl.Func, opts Options) []Diagnostic {
	m := Metrics
	if m == nil {
		return run(f, opts)
	}
	began := time.Now()
	diags := run(f, opts)
	m.observe(began, diags)
	return diags
}

func run(f *rtl.Func, opts Options) []Diagnostic {
	if opts.Machine == nil {
		opts.Machine = machine.StrongARM()
	}
	if err := rtl.Validate(f); err != nil {
		return []Diagnostic{{
			Fn: f.Name, Block: -1, Instr: -1,
			Rule: RuleStructure, Severity: SevError, Msg: err.Error(),
		}}
	}
	c := &checker{f: f, opts: opts, g: rtl.ComputeCFG(f)}
	c.reach = c.g.Reachable()
	c.checkDefBeforeUse()
	c.checkCondCodes()
	c.checkMachine()
	c.checkCalleeSave()
	if opts.Lints {
		c.lintCFG()
		c.lintDataflow()
	}
	c.sort()
	return c.diags
}

// Program verifies every function of a program, concatenating the
// findings in function order.
func Program(p *rtl.Program, opts Options) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Funcs {
		out = append(out, Run(f, opts)...)
	}
	return out
}

// Errors filters the findings down to the SevError tier.
func Errors(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Severity == SevError {
			out = append(out, d)
		}
	}
	return out
}

// Err runs the verifier without lints and folds the error-tier findings
// into a single error, or returns nil when the function is clean. Its
// signature matches opt.PostCheck, so installing the verifier as the
// post-phase hook is just "opt.PostCheck = check.Err".
func Err(f *rtl.Func, d *machine.Desc) error {
	diags := Errors(Run(f, Options{Machine: d}))
	if len(diags) == 0 {
		return nil
	}
	msgs := make([]string, 0, 3)
	for i, dg := range diags {
		if i == 3 {
			msgs = append(msgs, fmt.Sprintf("... and %d more", len(diags)-3))
			break
		}
		msgs = append(msgs, dg.String())
	}
	return fmt.Errorf("%d violation(s): %s", len(diags), strings.Join(msgs, "; "))
}

// checker carries the per-run analysis state.
type checker struct {
	f     *rtl.Func
	opts  Options
	g     *rtl.CFG
	reach []bool
	diags []Diagnostic
}

func (c *checker) report(bpos, instr int, rule string, sev Severity, format string, args ...any) {
	c.reportW(bpos, instr, rule, sev, nil, format, args...)
}

// reportW is report with an explicit path witness (block IDs).
func (c *checker) reportW(bpos, instr int, rule string, sev Severity, witness []int, format string, args ...any) {
	blockID := -1
	if bpos >= 0 {
		blockID = c.f.Blocks[bpos].ID
	}
	c.diags = append(c.diags, Diagnostic{
		Fn: c.f.Name, Block: blockID, Instr: instr,
		Rule: rule, Severity: sev, Msg: fmt.Sprintf(format, args...),
		Witness: witness,
	})
}

// witnessTo returns a shortest entry-to-block path witness as block
// IDs, or nil when the block is unreachable (no path exists).
func (c *checker) witnessTo(bpos int) []int {
	if bpos < 0 || !c.reach[bpos] {
		return nil
	}
	path := dataflow.PathTo(c.g, bpos, nil)
	if path == nil {
		return nil
	}
	return dataflow.BlockIDs(c.f, path)
}

func (c *checker) sort() {
	pos := make(map[int]int, len(c.f.Blocks))
	for i, b := range c.f.Blocks {
		pos[b.ID] = i
	}
	sort.SliceStable(c.diags, func(i, j int) bool {
		a, b := c.diags[i], c.diags[j]
		if pa, pb := pos[a.Block], pos[b.Block]; pa != pb {
			return pa < pb
		}
		if a.Instr != b.Instr {
			return a.Instr < b.Instr
		}
		return a.Rule < b.Rule
	})
}

// entrySeed returns the registers holding defined values when the
// function is entered: the stack pointer and the argument registers
// r0..r3, as many as the function declares (the call convention caps
// arguments at four). Once the entry/exit fixup has run, the
// callee-save registers also count as live-in — the save code reads
// the caller's values to preserve them. During optimization they are
// ordinary storage whose incoming value is garbage, so reading one
// before writing it is a miscompile.
func (c *checker) entrySeed(maxReg int) rtl.RegSet {
	seed := rtl.NewRegSet(maxReg)
	seed.Add(rtl.RegSP)
	n := c.f.NArgs
	if n > 4 {
		n = 4
	}
	for i := 0; i < n; i++ {
		seed.Add(rtl.Reg(i))
	}
	if c.f.EntryExitFixed {
		for r := rtl.RegR4; r <= rtl.RegR11; r++ {
			seed.Add(r)
		}
	}
	return seed
}

// checkDefBeforeUse runs the forward must-be-assigned dataflow
// (dataflow.MustAssigned): a block's in-set is the intersection of its
// predecessors' out-sets, entry seeded by entrySeed, each
// instruction's reads must be covered, and its writes extend the set.
// Call instructions count as defining the caller-save registers,
// matching Instr.Defs. The condition-code register is excluded here —
// checkCondCodes models it with call-clobber precision — and the
// program counter is the reserved-register rule's business. Each
// finding carries as witness a shortest entry path that reaches the
// read without ever assigning the register.
func (c *checker) checkDefBeforeUse() {
	f := c.f
	maxReg := int(f.NextPseudo)
	facts := dataflow.MustAssigned(c.g, c.entrySeed(maxReg), maxReg)
	var buf [8]rtl.Reg
	for bpos, b := range f.Blocks {
		if !c.reach[bpos] {
			continue
		}
		cur := facts.In[bpos].Copy()
		for j := range b.Instrs {
			ins := &b.Instrs[j]
			for _, r := range ins.Uses(buf[:0]) {
				if r == rtl.RegIC || r == rtl.RegPC {
					continue
				}
				if !cur.Has(r) {
					c.reportW(bpos, j, RuleUseBeforeDef, SevError, c.unassignedWitness(bpos, r),
						"%s read by %q but not assigned on every path from entry", r, ins.String())
				}
			}
			for _, r := range ins.Defs(buf[:0]) {
				cur.Add(r)
			}
		}
	}
}

// unassignedWitness finds a shortest path from entry to the block
// holding an uncovered read of r that passes through no block
// assigning r — the concrete path along which the read sees garbage.
// Such a path exists whenever the must-assigned analysis reports the
// read (the in-set is the intersection over paths); the unrestricted
// fallback is defensive only.
func (c *checker) unassignedWitness(bpos int, r rtl.Reg) []int {
	var buf [8]rtl.Reg
	defines := func(p int) bool {
		for j := range c.f.Blocks[p].Instrs {
			for _, d := range c.f.Blocks[p].Instrs[j].Defs(buf[:0]) {
				if d == r {
					return true
				}
			}
		}
		return false
	}
	path := dataflow.PathTo(c.g, bpos, defines)
	if path == nil {
		path = dataflow.PathTo(c.g, bpos, nil)
	}
	return dataflow.BlockIDs(c.f, path)
}

// checkCondCodes enforces the condition-code discipline: every
// conditional branch must be dominated by a reaching compare with no
// clobber in between. A compare validates IC, a call clobbers it
// (calls save no flags), and the meet over paths is conjunction — the
// codes must be valid on every way to reach the branch. The problem is
// a one-bit forward instance of the dataflow solver; each finding
// carries as witness a path along which the codes arrive invalid.
func (c *checker) checkCondCodes() {
	f := c.f
	facts := dataflow.Solve(c.g, dataflow.Spec[bool]{
		Dir:      dataflow.Forward,
		Top:      func() bool { return true },
		Boundary: func() bool { return false },
		Meet:     func(acc, x bool) bool { return acc && x },
		Transfer: func(bpos int, ic bool) bool {
			for j := range f.Blocks[bpos].Instrs {
				ic = transferOne(&f.Blocks[bpos].Instrs[j], ic)
			}
			return ic
		},
		Equal: func(a, b bool) bool { return a == b },
	})
	for bpos, b := range f.Blocks {
		if !c.reach[bpos] {
			continue
		}
		ic := facts.In[bpos]
		for j := range b.Instrs {
			ins := &b.Instrs[j]
			if ins.Op == rtl.OpBranch && !ic {
				c.reportW(bpos, j, RuleCondCode, SevError, c.condCodeWitness(bpos, j),
					"branch %q not reached by a compare on every path (condition codes unset or call-clobbered)",
					ins.String())
			}
			ic = transferOne(ins, ic)
		}
	}
}

// condCodeWitness finds a shortest path from entry to the block of a
// flagged branch along which the condition codes are invalid at the
// branch. If the block's own prefix (the instructions before index j)
// invalidates the codes regardless of how they arrive, any entry path
// is a witness; otherwise the prefix preserves validity, so the path
// must deliver the codes invalid — a breadth-first search over
// (block, codes-valid-on-entry) states finds the shortest such path.
func (c *checker) condCodeWitness(bpos, j int) []int {
	f, g := c.f, c.g
	ic := true
	for k := 0; k < j; k++ {
		ic = transferOne(&f.Blocks[bpos].Instrs[k], ic)
	}
	if !ic {
		return c.witnessTo(bpos)
	}
	n := len(g.Succs)
	// State s = 2*block + validBit, where validBit is the codes'
	// validity on block entry. parent holds the predecessor state for
	// path reconstruction (-1 start, -2 unvisited).
	parent := make([]int, 2*n)
	for i := range parent {
		parent[i] = -2
	}
	start, goal := 0, 2*bpos // entry arrives invalid; reach bpos invalid
	parent[start] = -1
	queue := []int{start}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if s == goal {
			var rev []int
			for cur := s; cur != -1; cur = parent[cur] {
				rev = append(rev, cur/2)
			}
			path := make([]int, len(rev))
			for i, p := range rev {
				path[len(rev)-1-i] = p
			}
			return dataflow.BlockIDs(f, path)
		}
		b, valid := s/2, s%2 == 1
		for k := range f.Blocks[b].Instrs {
			valid = transferOne(&f.Blocks[b].Instrs[k], valid)
		}
		for _, sb := range g.Succs[b] {
			ns := 2 * sb
			if valid {
				ns++
			}
			if parent[ns] == -2 {
				parent[ns] = s
				queue = append(queue, ns)
			}
		}
	}
	return nil
}

// transferOne is the single-instruction condition-code transfer
// function shared by the fixed-point and reporting passes: a compare
// validates the codes, a call clobbers them, everything else preserves
// them. (A stray non-compare write of IC counts as setting them — the
// reserved-register rule reports that misuse separately.)
func transferOne(ins *rtl.Instr, ic bool) bool {
	switch ins.Op {
	case rtl.OpCmp:
		return true
	case rtl.OpCall:
		return false
	}
	if hasDst(ins.Op) && ins.Dst == rtl.RegIC {
		return true
	}
	return ic
}

// checkMachine walks every instruction (reachable or not — an
// assembler would choke on dead code too) checking target
// encodability, reserved-register discipline and frame-slot bounds.
func (c *checker) checkMachine() {
	f := c.f
	d := c.opts.Machine
	hasFrame := f.FrameSize > 0 || len(f.Slots) > 0
	for bpos, b := range f.Blocks {
		for j := range b.Instrs {
			ins := &b.Instrs[j]
			if err := d.Check(ins); err != nil {
				c.reportW(bpos, j, RuleImmRange, SevError, c.witnessTo(bpos), "%v in %q", err, ins.String())
			}
			c.checkReserved(bpos, j, ins)
			// Frame bounds: direct stack-pointer addressing must hit an
			// allocated slot. (Computed addresses use an ordinary base
			// register and are outside the static model.) Functions
			// parsed from textual RTL carry no frame metadata, so the
			// rule only applies when slots exist.
			if !hasFrame {
				continue
			}
			var base rtl.Operand
			switch ins.Op {
			case rtl.OpLoad:
				base = ins.A
			case rtl.OpStore:
				base = ins.B
			default:
				continue
			}
			if base.IsReg(rtl.RegSP) && f.SlotAt(ins.Disp) == nil {
				c.reportW(bpos, j, RuleFrameBounds, SevError, c.witnessTo(bpos),
					"%q addresses offset %d outside every frame slot (frame size %d)",
					ins.String(), ins.Disp, f.FrameSize)
			}
		}
	}
}

// hasDst reports whether the opcode's Dst field is meaningful (Instr's
// zero value leaves Dst = r0 on instructions without a destination).
func hasDst(op rtl.Op) bool {
	switch op {
	case rtl.OpStore, rtl.OpBranch, rtl.OpJmp, rtl.OpCall, rtl.OpRet, rtl.OpNop:
		return false
	}
	return true
}

func (c *checker) checkReserved(bpos, j int, ins *rtl.Instr) {
	if hasDst(ins.Op) {
		switch ins.Dst {
		case rtl.RegSP, rtl.RegLR, rtl.RegPC:
			c.reportW(bpos, j, RuleReservedReg, SevError, c.witnessTo(bpos),
				"%q writes reserved register %s", ins.String(), ins.Dst)
		case rtl.RegIC:
			if ins.Op != rtl.OpCmp {
				c.reportW(bpos, j, RuleReservedReg, SevError, c.witnessTo(bpos),
					"%q sets the condition codes outside a compare", ins.String())
			}
		}
		if ins.Op == rtl.OpCmp && ins.Dst != rtl.RegIC {
			c.reportW(bpos, j, RuleReservedReg, SevError, c.witnessTo(bpos),
				"compare %q must target the condition codes, not %s", ins.String(), ins.Dst)
		}
	}
	for _, o := range [2]rtl.Operand{ins.A, ins.B} {
		if o.Kind != rtl.OperReg {
			continue
		}
		if o.Reg == rtl.RegPC || o.Reg == rtl.RegLR {
			c.reportW(bpos, j, RuleReservedReg, SevError, c.witnessTo(bpos),
				"%q reads reserved register %s", ins.String(), o.Reg)
		}
	}
}

// checkCalleeSave verifies, once the compulsory entry/exit fixup has
// run, that every callee-save register the function modifies is saved
// to a frame slot in the entry block before its first write and
// restored from the same slot before every return.
func (c *checker) checkCalleeSave() {
	f := c.f
	if !f.EntryExitFixed || !f.RegAssigned {
		return
	}
	for r := rtl.RegR4; r <= rtl.RegR11; r++ {
		modified := false
		for _, b := range f.Blocks {
			for j := range b.Instrs {
				ins := &b.Instrs[j]
				if hasDst(ins.Op) && ins.Dst == r {
					modified = true
				}
			}
		}
		if !modified {
			continue
		}
		// Entry: a store of r to a stack slot before any write of r.
		saveOff, saved := int32(0), false
		entry := f.Entry()
		for j := range entry.Instrs {
			ins := &entry.Instrs[j]
			if ins.Op == rtl.OpStore && ins.A.IsReg(r) && ins.B.IsReg(rtl.RegSP) {
				saveOff, saved = ins.Disp, true
				break
			}
			if hasDst(ins.Op) && ins.Dst == r {
				break
			}
		}
		if !saved {
			c.reportW(0, -1, RuleCalleeSave, SevError, c.witnessTo(0),
				"callee-save %s is modified but never saved on entry", r)
			continue
		}
		// Every return: the last write of r in the returning block must
		// be a reload from the save slot.
		for bpos, b := range f.Blocks {
			last := b.Last()
			if last == nil || last.Op != rtl.OpRet || !c.reach[bpos] {
				continue
			}
			restored := false
			for j := len(b.Instrs) - 1; j >= 0; j-- {
				ins := &b.Instrs[j]
				if !hasDst(ins.Op) || ins.Dst != r {
					continue
				}
				restored = ins.Op == rtl.OpLoad && ins.A.IsReg(rtl.RegSP) && ins.Disp == saveOff
				break
			}
			if !restored {
				c.reportW(bpos, len(b.Instrs)-1, RuleCalleeSave, SevError, c.witnessTo(bpos),
					"callee-save %s not restored from its save slot (offset %d) before return", r, saveOff)
			}
		}
	}
}

// lintCFG emits the warning-tier CFG hygiene findings. Findings on
// reachable blocks carry a shortest entry path; RuleUnreachable has no
// witness by definition.
func (c *checker) lintCFG() {
	f := c.f
	for bpos, b := range f.Blocks {
		if !c.reach[bpos] {
			c.report(bpos, -1, RuleUnreachable, SevWarn, "block unreachable from entry")
		}
		if len(b.Instrs) == 0 {
			c.reportW(bpos, -1, RuleEmptyBlock, SevWarn, c.witnessTo(bpos), "empty block")
			continue
		}
		last := b.Last()
		if last.Op == rtl.OpJmp && bpos+1 < len(f.Blocks) && f.Blocks[bpos+1].ID == last.Target {
			c.reportW(bpos, len(b.Instrs)-1, RuleJumpNext, SevWarn, c.witnessTo(bpos),
				"jump to the fall-through successor L%d", last.Target)
		}
		if succs := c.g.Succs[bpos]; len(succs) == 1 && succs[0] == bpos {
			c.reportW(bpos, len(b.Instrs)-1, RuleSelfLoop, SevWarn, c.witnessTo(bpos),
				"block's only successor is itself: inescapable loop")
		}
	}
}

// lintDataflow emits the warning-tier flow-sensitive findings: dead
// stores (phase 'h' deletes them) and redundant moves (phase 'c'
// does). Both use the internal/dataflow analyses — CFG-wide liveness
// and available copies — so a store that dies across a block boundary
// or a copy made redundant by a different block is found, not just the
// straight-line cases.
func (c *checker) lintDataflow() {
	f := c.f
	lv := dataflow.Liveness(c.g)
	copies := dataflow.AvailableCopies(c.g)
	var buf [8]rtl.Reg
	for bpos, b := range f.Blocks {
		if !c.reach[bpos] {
			continue
		}
		// Dead stores: walk the block backwards carrying the live set,
		// exactly the traversal phase 'h' deletes with. Instructions
		// with side effects (stores, calls, control transfers) are
		// exempt; a compare whose condition codes are dead is not.
		live := lv.Out[bpos].Copy()
		for j := len(b.Instrs) - 1; j >= 0; j-- {
			ins := &b.Instrs[j]
			if !ins.HasSideEffects() && ins.Op != rtl.OpNop &&
				ins.Dst != rtl.RegNone && !live.Has(ins.Dst) {
				c.reportW(bpos, j, RuleDeadStore, SevWarn, c.deadStoreWitness(bpos, ins.Dst),
					"%s assigned by %q but never read on any path", ins.Dst, ins.String())
			}
			for _, d := range ins.Defs(buf[:0]) {
				live.Remove(d)
			}
			for _, u := range ins.Uses(buf[:0]) {
				live.Add(u)
			}
		}
		// Redundant moves: a register-to-register mov whose pair is
		// already available on every path, or a copy of a register to
		// itself. Any entry path witnesses a must-availability fact.
		for j := range b.Instrs {
			ins := &b.Instrs[j]
			if ins.Op != rtl.OpMov || ins.A.Kind != rtl.OperReg || !hasDst(ins.Op) {
				continue
			}
			if ins.Dst == ins.A.Reg {
				c.reportW(bpos, j, RuleRedundantMove, SevWarn, c.witnessTo(bpos),
					"%q copies %s to itself", ins.String(), ins.Dst)
			} else if dataflow.CopiesAt(c.g, copies, bpos, j).Has(ins.Dst, ins.A.Reg) {
				c.reportW(bpos, j, RuleRedundantMove, SevWarn, c.witnessTo(bpos),
					"%q re-establishes a copy of %s and %s already available on every path",
					ins.String(), ins.Dst, ins.A.Reg)
			}
		}
	}
}

// deadStoreWitness finds a path from the dead store's block to a
// function exit along which the stored register is never read — the
// concrete evidence the value dies. Blocks with an upward-exposed use
// of r are avoided; when every exit path redefines r first and later
// reads the new value, the strict path does not exist and any exit
// path serves (the store is still dead — the re-reader sees the new
// definition). Functions with no reachable exit yield no witness.
func (c *checker) deadStoreWitness(bpos int, r rtl.Reg) []int {
	var buf [8]rtl.Reg
	exposedUse := func(p int) bool {
		for j := range c.f.Blocks[p].Instrs {
			ins := &c.f.Blocks[p].Instrs[j]
			for _, u := range ins.Uses(buf[:0]) {
				if u == r {
					return true
				}
			}
			for _, d := range ins.Defs(buf[:0]) {
				if d == r {
					return false
				}
			}
		}
		return false
	}
	path := dataflow.PathToExit(c.g, bpos, exposedUse)
	if path == nil {
		path = dataflow.PathToExit(c.g, bpos, nil)
	}
	return dataflow.BlockIDs(c.f, path)
}
