// Package check is the semantic RTL verifier: a dataflow-driven static
// analysis layer that goes beyond the structural rtl.Validate tier and
// catches miscompiles at the phase where they happen. The whole result
// of the reproduced study rests on every candidate phase being
// semantics-preserving — one silently miscompiling phase corrupts the
// enumerated DAG and every statistic mined from it — so the verifier is
// wired in as a post-phase hook (opt.PostCheck), as a per-node recorder
// in the exhaustive search (search.Options.Check) and as a standalone
// lint tool (cmd/rtllint).
//
// Two tiers of findings:
//
//   - errors (SevError) are invariant violations no phase may produce:
//     a register read before any path assigns it, a conditional branch
//     with stale or clobbered condition codes, an instruction the
//     machine cannot encode, misuse of the reserved registers, a frame
//     access outside the allocated slots, a clobbered callee-save
//     register after the entry/exit fixup;
//
//   - warnings (SevWarn) are CFG hygiene lints: unreachable blocks,
//     empty blocks, jumps to the fall-through successor and blocks that
//     loop on themselves with no exit. These states are legal — entire
//     candidate phases exist to clean them up — so they never fail the
//     hooks, but cmd/rtllint surfaces them.
package check

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/machine"
	"repro/internal/rtl"
	"repro/internal/telemetry"
)

// Severity grades a diagnostic.
type Severity uint8

const (
	// SevError marks a semantic invariant violation: the function is
	// miscompiled or unencodable.
	SevError Severity = iota
	// SevWarn marks a hygiene finding that a cleanup phase could
	// remove but that does not threaten correctness.
	SevWarn
)

// String renders the severity for reports.
func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Rule identifiers, one per verifier rule, so tooling can aggregate
// findings and tests can assert that the intended rule fired.
const (
	// RuleStructure wraps an rtl.Validate failure; when it fires the
	// deeper analyses are skipped (they assume a well-formed CFG).
	RuleStructure = "structure"
	// RuleUseBeforeDef fires when some path from the entry reaches a
	// read of a pseudo or hardware register that no instruction on the
	// path has assigned. The entry seeds the argument registers
	// r0..r3 (as many as the function takes) and the stack pointer.
	RuleUseBeforeDef = "use-before-def"
	// RuleCondCode fires when a conditional branch executes without a
	// reaching compare on every path: the condition codes are either
	// never set or clobbered by an intervening call.
	RuleCondCode = "cond-code"
	// RuleImmRange fires when the target machine cannot encode an
	// instruction (immediate range, operand form).
	RuleImmRange = "imm-range"
	// RuleReservedReg fires on misuse of the reserved registers:
	// writing the stack pointer (r13), link register (r14) or program
	// counter (r15) as an ordinary destination, reading r15 or r14 as
	// an operand, or touching the condition codes outside a compare.
	RuleReservedReg = "reserved-reg"
	// RuleFrameBounds fires when a stack-pointer-relative load or
	// store falls outside every allocated frame slot.
	RuleFrameBounds = "frame-bounds"
	// RuleCalleeSave fires, after the compulsory entry/exit fixup,
	// when a modified callee-save register is not saved on entry and
	// restored before every return.
	RuleCalleeSave = "callee-save"
	// RuleUnreachable flags blocks unreachable from the entry (the
	// remove-unreachable phase 'd' deletes them).
	RuleUnreachable = "cfg-unreachable"
	// RuleEmptyBlock flags blocks with no instructions (the implicit
	// cleanup pass normally removes them).
	RuleEmptyBlock = "cfg-empty-block"
	// RuleJumpNext flags jumps to the fall-through successor (the
	// useless-jump-removal phase 'u' deletes them).
	RuleJumpNext = "cfg-jump-next"
	// RuleSelfLoop flags blocks whose only successor is themselves —
	// an inescapable loop.
	RuleSelfLoop = "cfg-self-loop"
)

// Diagnostic is one verifier finding, structured so tooling can
// aggregate findings rather than fail on the first error.
type Diagnostic struct {
	// Fn is the function name.
	Fn string
	// Block is the block ID (the L-label), or -1 for function-level
	// findings.
	Block int
	// Instr is the instruction index within the block, or -1 for
	// block-level findings.
	Instr int
	// Rule is the Rule* identifier that fired.
	Rule string
	// Severity grades the finding.
	Severity Severity
	// Msg is the human-readable explanation.
	Msg string
}

// String renders the diagnostic as "fn: L2[3]: rule: msg (severity)".
func (d Diagnostic) String() string {
	loc := d.Fn
	if d.Block >= 0 {
		loc += fmt.Sprintf(": L%d", d.Block)
		if d.Instr >= 0 {
			loc += fmt.Sprintf("[%d]", d.Instr)
		}
	}
	return fmt.Sprintf("%s: %s: %s (%s)", loc, d.Rule, d.Msg, d.Severity)
}

// Metrics, when non-nil, tags every verification: a check.verify.calls
// counter, a check.verify.duration_ns histogram, and one
// check.finding.<rule> counter per diagnostic rule that fires. Install
// before concurrent use (the search calls Run from its worker pool).
var Metrics *VerifyMetrics

// VerifyMetrics is the verifier's instrument bundle.
type VerifyMetrics struct {
	reg   *telemetry.Registry
	calls *telemetry.Counter
	dur   *telemetry.Histogram
}

// NewVerifyMetrics registers the verifier instruments on reg.
func NewVerifyMetrics(reg *telemetry.Registry) *VerifyMetrics {
	return &VerifyMetrics{
		reg:   reg,
		calls: reg.Counter("check.verify.calls"),
		dur:   reg.Histogram("check.verify.duration_ns"),
	}
}

// observe records one verification and its findings. Rule counters go
// through the registry (a mutexed map lookup) because the rule set is
// open-ended; findings are rare enough that this never shows up next
// to the dataflow analyses themselves.
func (m *VerifyMetrics) observe(began time.Time, diags []Diagnostic) {
	m.calls.Inc()
	m.dur.ObserveSince(began)
	for _, d := range diags {
		m.reg.Counter("check.finding." + d.Rule).Inc()
	}
}

// Options configure a verification run.
type Options struct {
	// Machine is the target description used for encoding legality
	// (default: machine.StrongARM()).
	Machine *machine.Desc
	// Lints additionally emits the SevWarn CFG hygiene findings.
	Lints bool
}

// Run verifies a single function and returns every finding, ordered by
// block layout position and instruction index. A structurally invalid
// function yields the single RuleStructure diagnostic.
func Run(f *rtl.Func, opts Options) []Diagnostic {
	m := Metrics
	if m == nil {
		return run(f, opts)
	}
	began := time.Now()
	diags := run(f, opts)
	m.observe(began, diags)
	return diags
}

func run(f *rtl.Func, opts Options) []Diagnostic {
	if opts.Machine == nil {
		opts.Machine = machine.StrongARM()
	}
	if err := rtl.Validate(f); err != nil {
		return []Diagnostic{{
			Fn: f.Name, Block: -1, Instr: -1,
			Rule: RuleStructure, Severity: SevError, Msg: err.Error(),
		}}
	}
	c := &checker{f: f, opts: opts, g: rtl.ComputeCFG(f)}
	c.reach = c.g.Reachable()
	c.checkDefBeforeUse()
	c.checkCondCodes()
	c.checkMachine()
	c.checkCalleeSave()
	if opts.Lints {
		c.lintCFG()
	}
	c.sort()
	return c.diags
}

// Program verifies every function of a program, concatenating the
// findings in function order.
func Program(p *rtl.Program, opts Options) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Funcs {
		out = append(out, Run(f, opts)...)
	}
	return out
}

// Errors filters the findings down to the SevError tier.
func Errors(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Severity == SevError {
			out = append(out, d)
		}
	}
	return out
}

// Err runs the verifier without lints and folds the error-tier findings
// into a single error, or returns nil when the function is clean. Its
// signature matches opt.PostCheck, so installing the verifier as the
// post-phase hook is just "opt.PostCheck = check.Err".
func Err(f *rtl.Func, d *machine.Desc) error {
	diags := Errors(Run(f, Options{Machine: d}))
	if len(diags) == 0 {
		return nil
	}
	msgs := make([]string, 0, 3)
	for i, dg := range diags {
		if i == 3 {
			msgs = append(msgs, fmt.Sprintf("... and %d more", len(diags)-3))
			break
		}
		msgs = append(msgs, dg.String())
	}
	return fmt.Errorf("%d violation(s): %s", len(diags), strings.Join(msgs, "; "))
}

// checker carries the per-run analysis state.
type checker struct {
	f     *rtl.Func
	opts  Options
	g     *rtl.CFG
	reach []bool
	diags []Diagnostic
}

func (c *checker) report(bpos, instr int, rule string, sev Severity, format string, args ...any) {
	blockID := -1
	if bpos >= 0 {
		blockID = c.f.Blocks[bpos].ID
	}
	c.diags = append(c.diags, Diagnostic{
		Fn: c.f.Name, Block: blockID, Instr: instr,
		Rule: rule, Severity: sev, Msg: fmt.Sprintf(format, args...),
	})
}

func (c *checker) sort() {
	pos := make(map[int]int, len(c.f.Blocks))
	for i, b := range c.f.Blocks {
		pos[b.ID] = i
	}
	sort.SliceStable(c.diags, func(i, j int) bool {
		a, b := c.diags[i], c.diags[j]
		if pa, pb := pos[a.Block], pos[b.Block]; pa != pb {
			return pa < pb
		}
		if a.Instr != b.Instr {
			return a.Instr < b.Instr
		}
		return a.Rule < b.Rule
	})
}

// entrySeed returns the registers holding defined values when the
// function is entered: the stack pointer and the argument registers
// r0..r3, as many as the function declares (the call convention caps
// arguments at four). Once the entry/exit fixup has run, the
// callee-save registers also count as live-in — the save code reads
// the caller's values to preserve them. During optimization they are
// ordinary storage whose incoming value is garbage, so reading one
// before writing it is a miscompile.
func (c *checker) entrySeed(maxReg int) rtl.RegSet {
	seed := rtl.NewRegSet(maxReg)
	seed.Add(rtl.RegSP)
	n := c.f.NArgs
	if n > 4 {
		n = 4
	}
	for i := 0; i < n; i++ {
		seed.Add(rtl.Reg(i))
	}
	if c.f.EntryExitFixed {
		for r := rtl.RegR4; r <= rtl.RegR11; r++ {
			seed.Add(r)
		}
	}
	return seed
}

// checkDefBeforeUse runs a forward must-be-assigned dataflow over the
// CFG: a block's in-set is the intersection of its predecessors'
// out-sets (entry seeded by entrySeed), each instruction's reads must
// be covered, and its writes extend the set. Call instructions count
// as defining the caller-save registers, matching Instr.Defs. The
// condition-code register is excluded here — checkCondCodes models it
// with call-clobber precision — and the program counter is the
// reserved-register rule's business.
func (c *checker) checkDefBeforeUse() {
	f := c.f
	n := len(f.Blocks)
	maxReg := int(f.NextPseudo)
	in := make([]rtl.RegSet, n)
	out := make([]rtl.RegSet, n)
	top := make([]bool, n) // out[i] still at the "everything" top value
	for i := range out {
		out[i] = rtl.NewRegSet(maxReg)
		out[i].Fill(maxReg)
		in[i] = rtl.NewRegSet(maxReg)
		top[i] = true
	}
	order := c.g.RPO()
	var buf [8]rtl.Reg
	transfer := func(bpos int, dst *rtl.RegSet) {
		for j := range f.Blocks[bpos].Instrs {
			ins := &f.Blocks[bpos].Instrs[j]
			for _, r := range ins.Defs(buf[:0]) {
				dst.Add(r)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, bpos := range order {
			if !c.reach[bpos] {
				continue
			}
			newIn := rtl.NewRegSet(maxReg)
			if bpos == 0 {
				newIn = c.entrySeed(maxReg)
			} else {
				newIn.Fill(maxReg)
				for _, p := range c.g.Preds[bpos] {
					if !top[p] {
						newIn.IntersectWith(out[p])
					}
				}
			}
			in[bpos] = newIn
			newOut := newIn.Copy()
			transfer(bpos, &newOut)
			if top[bpos] {
				top[bpos] = false
				out[bpos] = newOut
				changed = true
				continue
			}
			if out[bpos].IntersectWith(newOut) {
				changed = true
			}
		}
	}
	// Reporting pass: walk each reachable block with its fixed-point
	// in-set and flag uncovered reads.
	for bpos, b := range f.Blocks {
		if !c.reach[bpos] {
			continue
		}
		cur := in[bpos].Copy()
		for j := range b.Instrs {
			ins := &b.Instrs[j]
			for _, r := range ins.Uses(buf[:0]) {
				if r == rtl.RegIC || r == rtl.RegPC {
					continue
				}
				if !cur.Has(r) {
					c.report(bpos, j, RuleUseBeforeDef, SevError,
						"%s read by %q but not assigned on every path from entry", r, ins.String())
				}
			}
			for _, r := range ins.Defs(buf[:0]) {
				cur.Add(r)
			}
		}
	}
}

// checkCondCodes enforces the condition-code discipline: every
// conditional branch must be dominated by a reaching compare with no
// clobber in between. A compare validates IC, a call clobbers it
// (calls save no flags), and the meet over paths is conjunction — the
// codes must be valid on every way to reach the branch.
func (c *checker) checkCondCodes() {
	f := c.f
	n := len(f.Blocks)
	icIn := make([]bool, n)
	known := make([]bool, n) // in-value computed at least once
	transfer := func(bpos int, ic bool) bool {
		for j := range f.Blocks[bpos].Instrs {
			ic = transferOne(&f.Blocks[bpos].Instrs[j], ic)
		}
		return ic
	}
	for changed := true; changed; {
		changed = false
		for _, bpos := range c.g.RPO() {
			if !c.reach[bpos] {
				continue
			}
			newIn := true
			if bpos == 0 {
				newIn = false
			} else {
				any := false
				for _, p := range c.g.Preds[bpos] {
					if !known[p] {
						continue
					}
					newIn = newIn && transfer(p, icIn[p])
					any = true
				}
				if !any {
					continue
				}
			}
			if !known[bpos] || newIn != icIn[bpos] {
				// Monotone: values only move from the optimistic true
				// toward false, so this terminates.
				if !known[bpos] || !newIn {
					icIn[bpos] = newIn
					known[bpos] = true
					changed = true
				}
			}
		}
	}
	for bpos, b := range f.Blocks {
		if !c.reach[bpos] {
			continue
		}
		ic := icIn[bpos]
		for j := range b.Instrs {
			ins := &b.Instrs[j]
			if ins.Op == rtl.OpBranch && !ic {
				c.report(bpos, j, RuleCondCode, SevError,
					"branch %q not reached by a compare on every path (condition codes unset or call-clobbered)",
					ins.String())
			}
			ic = transferOne(ins, ic)
		}
	}
}

// transferOne is the single-instruction condition-code transfer
// function shared by the fixed-point and reporting passes: a compare
// validates the codes, a call clobbers them, everything else preserves
// them. (A stray non-compare write of IC counts as setting them — the
// reserved-register rule reports that misuse separately.)
func transferOne(ins *rtl.Instr, ic bool) bool {
	switch ins.Op {
	case rtl.OpCmp:
		return true
	case rtl.OpCall:
		return false
	}
	if hasDst(ins.Op) && ins.Dst == rtl.RegIC {
		return true
	}
	return ic
}

// checkMachine walks every instruction (reachable or not — an
// assembler would choke on dead code too) checking target
// encodability, reserved-register discipline and frame-slot bounds.
func (c *checker) checkMachine() {
	f := c.f
	d := c.opts.Machine
	hasFrame := f.FrameSize > 0 || len(f.Slots) > 0
	for bpos, b := range f.Blocks {
		for j := range b.Instrs {
			ins := &b.Instrs[j]
			if err := d.Check(ins); err != nil {
				c.report(bpos, j, RuleImmRange, SevError, "%v in %q", err, ins.String())
			}
			c.checkReserved(bpos, j, ins)
			// Frame bounds: direct stack-pointer addressing must hit an
			// allocated slot. (Computed addresses use an ordinary base
			// register and are outside the static model.) Functions
			// parsed from textual RTL carry no frame metadata, so the
			// rule only applies when slots exist.
			if !hasFrame {
				continue
			}
			var base rtl.Operand
			switch ins.Op {
			case rtl.OpLoad:
				base = ins.A
			case rtl.OpStore:
				base = ins.B
			default:
				continue
			}
			if base.IsReg(rtl.RegSP) && f.SlotAt(ins.Disp) == nil {
				c.report(bpos, j, RuleFrameBounds, SevError,
					"%q addresses offset %d outside every frame slot (frame size %d)",
					ins.String(), ins.Disp, f.FrameSize)
			}
		}
	}
}

// hasDst reports whether the opcode's Dst field is meaningful (Instr's
// zero value leaves Dst = r0 on instructions without a destination).
func hasDst(op rtl.Op) bool {
	switch op {
	case rtl.OpStore, rtl.OpBranch, rtl.OpJmp, rtl.OpCall, rtl.OpRet, rtl.OpNop:
		return false
	}
	return true
}

func (c *checker) checkReserved(bpos, j int, ins *rtl.Instr) {
	if hasDst(ins.Op) {
		switch ins.Dst {
		case rtl.RegSP, rtl.RegLR, rtl.RegPC:
			c.report(bpos, j, RuleReservedReg, SevError,
				"%q writes reserved register %s", ins.String(), ins.Dst)
		case rtl.RegIC:
			if ins.Op != rtl.OpCmp {
				c.report(bpos, j, RuleReservedReg, SevError,
					"%q sets the condition codes outside a compare", ins.String())
			}
		}
		if ins.Op == rtl.OpCmp && ins.Dst != rtl.RegIC {
			c.report(bpos, j, RuleReservedReg, SevError,
				"compare %q must target the condition codes, not %s", ins.String(), ins.Dst)
		}
	}
	for _, o := range [2]rtl.Operand{ins.A, ins.B} {
		if o.Kind != rtl.OperReg {
			continue
		}
		if o.Reg == rtl.RegPC || o.Reg == rtl.RegLR {
			c.report(bpos, j, RuleReservedReg, SevError,
				"%q reads reserved register %s", ins.String(), o.Reg)
		}
	}
}

// checkCalleeSave verifies, once the compulsory entry/exit fixup has
// run, that every callee-save register the function modifies is saved
// to a frame slot in the entry block before its first write and
// restored from the same slot before every return.
func (c *checker) checkCalleeSave() {
	f := c.f
	if !f.EntryExitFixed || !f.RegAssigned {
		return
	}
	for r := rtl.RegR4; r <= rtl.RegR11; r++ {
		modified := false
		for _, b := range f.Blocks {
			for j := range b.Instrs {
				ins := &b.Instrs[j]
				if hasDst(ins.Op) && ins.Dst == r {
					modified = true
				}
			}
		}
		if !modified {
			continue
		}
		// Entry: a store of r to a stack slot before any write of r.
		saveOff, saved := int32(0), false
		entry := f.Entry()
		for j := range entry.Instrs {
			ins := &entry.Instrs[j]
			if ins.Op == rtl.OpStore && ins.A.IsReg(r) && ins.B.IsReg(rtl.RegSP) {
				saveOff, saved = ins.Disp, true
				break
			}
			if hasDst(ins.Op) && ins.Dst == r {
				break
			}
		}
		if !saved {
			c.report(0, -1, RuleCalleeSave, SevError,
				"callee-save %s is modified but never saved on entry", r)
			continue
		}
		// Every return: the last write of r in the returning block must
		// be a reload from the save slot.
		for bpos, b := range f.Blocks {
			last := b.Last()
			if last == nil || last.Op != rtl.OpRet || !c.reach[bpos] {
				continue
			}
			restored := false
			for j := len(b.Instrs) - 1; j >= 0; j-- {
				ins := &b.Instrs[j]
				if !hasDst(ins.Op) || ins.Dst != r {
					continue
				}
				restored = ins.Op == rtl.OpLoad && ins.A.IsReg(rtl.RegSP) && ins.Disp == saveOff
				break
			}
			if !restored {
				c.report(bpos, len(b.Instrs)-1, RuleCalleeSave, SevError,
					"callee-save %s not restored from its save slot (offset %d) before return", r, saveOff)
			}
		}
	}
}

// lintCFG emits the warning-tier hygiene findings.
func (c *checker) lintCFG() {
	f := c.f
	for bpos, b := range f.Blocks {
		if !c.reach[bpos] {
			c.report(bpos, -1, RuleUnreachable, SevWarn, "block unreachable from entry")
		}
		if len(b.Instrs) == 0 {
			c.report(bpos, -1, RuleEmptyBlock, SevWarn, "empty block")
			continue
		}
		last := b.Last()
		if last.Op == rtl.OpJmp && bpos+1 < len(f.Blocks) && f.Blocks[bpos+1].ID == last.Target {
			c.report(bpos, len(b.Instrs)-1, RuleJumpNext, SevWarn,
				"jump to the fall-through successor L%d", last.Target)
		}
		if succs := c.g.Succs[bpos]; len(succs) == 1 && succs[0] == bpos {
			c.report(bpos, len(b.Instrs)-1, RuleSelfLoop, SevWarn,
				"block's only successor is itself: inescapable loop")
		}
	}
}
