package check_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/check"
)

// findRule returns every diagnostic with the given rule.
func findRule(diags []check.Diagnostic, rule string) []check.Diagnostic {
	var out []check.Diagnostic
	for _, d := range diags {
		if d.Rule == rule {
			out = append(out, d)
		}
	}
	return out
}

// TestWitnessUseBeforeDef pins the path witness of a one-path
// use-before-def: the trace must take the branch around L1 (the block
// that assigns r[1]), not the fall-through that defines it.
func TestWitnessUseBeforeDef(t *testing.T) {
	f := parse(t, `
broken(1):
L0:
	IC=r[0]?0;
	PC=IC==0,L2;
L1:
	r[1]=5;
L2:
	RET r[1];
`)
	diags := findRule(check.Run(f, check.Options{}), check.RuleUseBeforeDef)
	if len(diags) != 1 {
		t.Fatalf("want one use-before-def, got %v", diags)
	}
	if want := []int{0, 2}; !reflect.DeepEqual(diags[0].Witness, want) {
		t.Fatalf("witness = %v, want %v (the path that skips the defining block L1)",
			diags[0].Witness, want)
	}
}

// TestWitnessCondCode pins the path witness of a one-path condition
// code clobber: the trace must run through L1, whose call clobbers the
// codes, not along the branch edge where they stay valid.
func TestWitnessCondCode(t *testing.T) {
	f := parse(t, `
broken(1):
L0:
	IC=r[0]?0;
	PC=IC==0,L2;
L1:
	CALL helper(0);
L2:
	PC=IC<0,L3;
L3:
	RET;
`)
	diags := findRule(check.Run(f, check.Options{}), check.RuleCondCode)
	if len(diags) != 1 {
		t.Fatalf("want one cond-code finding, got %v", diags)
	}
	if want := []int{0, 1, 2}; !reflect.DeepEqual(diags[0].Witness, want) {
		t.Fatalf("witness = %v, want %v (the path through the clobbering call)",
			diags[0].Witness, want)
	}
}

// TestWitnessCondCodeUnset: with no compare anywhere the codes arrive
// invalid straight from entry.
func TestWitnessCondCodeUnset(t *testing.T) {
	f := parse(t, `
broken(0):
L0:
	PC=IC==0,L1;
L1:
	RET;
`)
	diags := findRule(check.Run(f, check.Options{}), check.RuleCondCode)
	if len(diags) != 1 {
		t.Fatalf("want one cond-code finding, got %v", diags)
	}
	if want := []int{0}; !reflect.DeepEqual(diags[0].Witness, want) {
		t.Fatalf("witness = %v, want %v", diags[0].Witness, want)
	}
}

// TestLintDeadStoreStraightLine: an assignment overwritten before any
// read is flagged, with the block itself as witness.
func TestLintDeadStoreStraightLine(t *testing.T) {
	f := parse(t, `
waste(1):
L0:
	r[1]=7;
	r[1]=r[0];
	RET r[1];
`)
	diags := check.Run(f, check.Options{Lints: true})
	if errs := check.Errors(diags); len(errs) != 0 {
		t.Fatalf("fixture produced errors: %v", errs)
	}
	dead := findRule(diags, check.RuleDeadStore)
	if len(dead) != 1 {
		t.Fatalf("want one dead store, got %v", dead)
	}
	if dead[0].Block != 0 || dead[0].Instr != 0 {
		t.Fatalf("dead store reported at L%d[%d], want L0[0]", dead[0].Block, dead[0].Instr)
	}
	if dead[0].Severity != check.SevWarn {
		t.Fatalf("dead store severity = %v, want warning", dead[0].Severity)
	}
	if want := []int{0}; !reflect.DeepEqual(dead[0].Witness, want) {
		t.Fatalf("witness = %v, want %v", dead[0].Witness, want)
	}
}

// TestLintDeadStoreCrossBlock: the store dies across a block boundary —
// every successor redefines the register before reading it — which the
// CFG-wide liveness catches and a block-local scan would not.
func TestLintDeadStoreCrossBlock(t *testing.T) {
	f := parse(t, `
waste(1):
L0:
	r[1]=7;
	IC=r[0]?0;
	PC=IC==0,L2;
L1:
	r[1]=1;
	RET r[1];
L2:
	r[1]=2;
	RET r[1];
`)
	diags := check.Run(f, check.Options{Lints: true})
	if errs := check.Errors(diags); len(errs) != 0 {
		t.Fatalf("fixture produced errors: %v", errs)
	}
	dead := findRule(diags, check.RuleDeadStore)
	if len(dead) != 1 {
		t.Fatalf("want one dead store, got %v", dead)
	}
	if dead[0].Block != 0 || dead[0].Instr != 0 {
		t.Fatalf("dead store reported at L%d[%d], want L0[0]", dead[0].Block, dead[0].Instr)
	}
	if len(dead[0].Witness) < 2 || dead[0].Witness[0] != 0 {
		t.Fatalf("witness = %v, want a path from L0 to an exit", dead[0].Witness)
	}
}

// TestLintRedundantMove: re-establishing a copy that is still
// available, and copying a register to itself.
func TestLintRedundantMove(t *testing.T) {
	f := parse(t, `
copies(1):
L0:
	r[1]=r[0];
	r[2]=r[1];
	r[1]=r[0];
	r[3]=r[1]+r[2];
	RET r[3];
`)
	diags := check.Run(f, check.Options{Lints: true})
	if errs := check.Errors(diags); len(errs) != 0 {
		t.Fatalf("fixture produced errors: %v", errs)
	}
	red := findRule(diags, check.RuleRedundantMove)
	if len(red) != 1 {
		t.Fatalf("want one redundant move, got %v", red)
	}
	if red[0].Block != 0 || red[0].Instr != 2 {
		t.Fatalf("redundant move reported at L%d[%d], want L0[2]", red[0].Block, red[0].Instr)
	}
}

// TestLintRedundantMoveAcrossBlocks: the copy is established in the
// entry block and recreated in a successor — only the flow-sensitive
// availability analysis connects the two.
func TestLintRedundantMoveAcrossBlocks(t *testing.T) {
	f := parse(t, `
copies(1):
L0:
	r[1]=r[0];
	IC=r[0]?0;
	PC=IC==0,L2;
L1:
	r[2]=r[1]+1;
L2:
	r[1]=r[0];
	RET r[1];
`)
	diags := check.Run(f, check.Options{Lints: true})
	red := findRule(diags, check.RuleRedundantMove)
	if len(red) != 1 {
		t.Fatalf("want one redundant move, got %v", red)
	}
	if red[0].Block != 2 || red[0].Instr != 0 {
		t.Fatalf("redundant move reported at L%d[%d], want L2[0]", red[0].Block, red[0].Instr)
	}
	if len(red[0].Witness) == 0 || red[0].Witness[0] != 0 {
		t.Fatalf("witness = %v, want a path from entry", red[0].Witness)
	}
}

// TestLintSelfMove: a register copied to itself.
func TestLintSelfMove(t *testing.T) {
	f := parse(t, `
selfm(1):
L0:
	r[1]=r[0];
	r[1]=r[1];
	RET r[1];
`)
	diags := check.Run(f, check.Options{Lints: true})
	red := findRule(diags, check.RuleRedundantMove)
	if len(red) != 1 {
		t.Fatalf("want one redundant move (self), got %v", red)
	}
	if red[0].Block != 0 || red[0].Instr != 1 {
		t.Fatalf("self move reported at L%d[%d], want L0[1]", red[0].Block, red[0].Instr)
	}
}

// TestLintCleanFunction: a function that uses everything it computes
// draws neither of the new lints.
func TestLintCleanFunction(t *testing.T) {
	f := parse(t, `
clean(2):
L0:
	r[2]=r[0]+r[1];
	RET r[2];
`)
	diags := check.Run(f, check.Options{Lints: true})
	if red := findRule(diags, check.RuleRedundantMove); len(red) != 0 {
		t.Errorf("clean function drew redundant-move: %v", red)
	}
	if dead := findRule(diags, check.RuleDeadStore); len(dead) != 0 {
		t.Errorf("clean function drew dead-store: %v", dead)
	}
}

// TestWitnessUnreachableEmpty: unreachable blocks have no path from
// entry, so their diagnostic carries no witness.
func TestWitnessUnreachableEmpty(t *testing.T) {
	f := parse(t, `
messy(0):
L0:
	PC=L2;
L1:
	r[0]=1;
	PC=L2;
L2:
	RET;
`)
	diags := check.Run(f, check.Options{Lints: true})
	unreach := findRule(diags, check.RuleUnreachable)
	if len(unreach) != 1 {
		t.Fatalf("want one unreachable finding, got %v", unreach)
	}
	if len(unreach[0].Witness) != 0 {
		t.Fatalf("unreachable block has witness %v, want none", unreach[0].Witness)
	}
	// The jump-to-fall-through sits in the unreachable block here, so
	// it carries no witness either.
	next := findRule(diags, check.RuleJumpNext)
	if len(next) != 1 || len(next[0].Witness) != 0 {
		t.Fatalf("jump-next in dead code should have no witness: %v", next)
	}

	// A reachable jump-to-fall-through does carry its entry path.
	f2 := parse(t, `
tidy(0):
L0:
	PC=L1;
L1:
	RET;
`)
	next = findRule(check.Run(f2, check.Options{Lints: true}), check.RuleJumpNext)
	if len(next) != 1 {
		t.Fatalf("want one jump-next finding, got %v", next)
	}
	if want := []int{0}; !reflect.DeepEqual(next[0].Witness, want) {
		t.Fatalf("jump-next witness = %v, want %v", next[0].Witness, want)
	}
}

// TestDiagnosticJSON pins the rtllint -json wire format: lower-case
// field names, severity as a string, witness as a block-ID array that
// is omitted when empty.
func TestDiagnosticJSON(t *testing.T) {
	d := check.Diagnostic{
		Fn: "f", Block: 2, Instr: 3,
		Rule: check.RuleCondCode, Severity: check.SevError, Msg: "boom",
		Witness: []int{0, 1, 2},
	}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"fn":"f","block":2,"instr":3,"rule":"cond-code","severity":"error","msg":"boom","witness":[0,1,2]}`
	if string(b) != want {
		t.Fatalf("json = %s\nwant   %s", b, want)
	}
	var back check.Diagnostic
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, d) {
		t.Fatalf("round trip changed the diagnostic: %+v vs %+v", back, d)
	}
	d2 := check.Diagnostic{Fn: "f", Block: -1, Instr: -1, Rule: check.RuleStructure, Severity: check.SevWarn, Msg: "m"}
	b2, err := json.Marshal(d2)
	if err != nil {
		t.Fatal(err)
	}
	want2 := `{"fn":"f","block":-1,"instr":-1,"rule":"structure","severity":"warning","msg":"m"}`
	if string(b2) != want2 {
		t.Fatalf("json = %s\nwant   %s", b2, want2)
	}
}
