// Package randprog generates random, deterministic, always-terminating
// mini-C programs for differential testing: the unoptimized
// interpretation of a generated program is the oracle against which
// every optimized instance is compared, so no second semantics
// implementation is needed.
//
// Generated programs use bounded counted loops, masked array indexes
// and non-zero constant divisors, so they cannot diverge, fault or
// divide by zero regardless of the arithmetic the generator picks.
package randprog

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds the generator.
type Config struct {
	// MaxStmts bounds the statements per block (default 6).
	MaxStmts int
	// MaxDepth bounds statement nesting (default 3).
	MaxDepth int
	// MaxExprDepth bounds expression trees (default 3).
	MaxExprDepth int
	// Params is the number of int parameters (default 2, max 4).
	Params int
}

func (c *Config) fill() {
	if c.MaxStmts == 0 {
		c.MaxStmts = 6
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 3
	}
	if c.MaxExprDepth == 0 {
		c.MaxExprDepth = 3
	}
	if c.Params == 0 {
		c.Params = 2
	}
	if c.Params > 4 {
		c.Params = 4
	}
}

// Program is a generated test program.
type Program struct {
	// Source is the mini-C text; the function to call is Entry with
	// Params int arguments. The function returns an int accumulating
	// the program's state, and traces intermediate values, so any
	// miscompilation surfaces in the observable behaviour.
	Source string
	Entry  string
	Params int
}

type gen struct {
	rng    *rand.Rand
	cfg    Config
	sb     strings.Builder
	vars   []string // assignable variables
	ro     []string // read-only (loop indexes): writing one could unbound the loop
	indent int
	nextID int
}

// New generates a program from the given seed.
func New(seed int64, cfg Config) Program {
	cfg.fill()
	g := &gen{rng: rand.New(rand.NewSource(seed)), cfg: cfg}

	g.line("int garr[16];")
	g.line("int gscalar;")
	g.line("")

	// A helper callee so calls and caller-save handling get coverage.
	g.line("int helper(int v) {")
	g.line("    gscalar += v & 15;")
	g.line("    return v * 3 - gscalar;")
	g.line("}")
	g.line("")

	params := make([]string, cfg.Params)
	for i := range params {
		params[i] = fmt.Sprintf("int p%d", i)
	}
	g.line("int fuzz(" + strings.Join(params, ", ") + ") {")
	g.indent++
	for i := 0; i < cfg.Params; i++ {
		g.vars = append(g.vars, fmt.Sprintf("p%d", i))
	}
	// Locals.
	nLocals := 2 + g.rng.Intn(3)
	for i := 0; i < nLocals; i++ {
		v := fmt.Sprintf("v%d", i)
		g.line(fmt.Sprintf("int %s = %d;", v, g.rng.Intn(41)-20))
		g.vars = append(g.vars, v)
	}
	g.block(cfg.MaxDepth)
	// Accumulate everything observable.
	acc := "gscalar"
	for _, v := range g.vars {
		acc += " + " + v
	}
	g.line("__trace(" + acc + ");")
	g.line("return " + acc + " + garr[3] + garr[7];")
	g.indent--
	g.line("}")

	return Program{Source: g.sb.String(), Entry: "fuzz", Params: cfg.Params}
}

func (g *gen) line(s string) {
	for i := 0; i < g.indent; i++ {
		g.sb.WriteString("    ")
	}
	g.sb.WriteString(s)
	g.sb.WriteByte('\n')
}

// lv picks an assignable variable; rv picks any readable one.
func (g *gen) lv() string { return g.vars[g.rng.Intn(len(g.vars))] }

func (g *gen) rv() string {
	n := len(g.vars) + len(g.ro)
	i := g.rng.Intn(n)
	if i < len(g.vars) {
		return g.vars[i]
	}
	return g.ro[i-len(g.vars)]
}

// expr builds a random expression of bounded depth. All divisions use
// non-zero constant divisors; all shifts use constant amounts.
func (g *gen) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", g.rng.Intn(201)-100)
		case 1:
			return fmt.Sprintf("garr[%s & 15]", g.rv())
		case 2:
			return "gscalar"
		default:
			return g.rv()
		}
	}
	a := g.expr(depth - 1)
	b := g.expr(depth - 1)
	switch g.rng.Intn(10) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b)
	case 3:
		return fmt.Sprintf("(%s / %d)", a, 1+g.rng.Intn(9))
	case 4:
		return fmt.Sprintf("(%s %% %d)", a, 1+g.rng.Intn(9))
	case 5:
		return fmt.Sprintf("(%s & %s)", a, b)
	case 6:
		return fmt.Sprintf("(%s | %s)", a, b)
	case 7:
		return fmt.Sprintf("(%s ^ %s)", a, b)
	case 8:
		return fmt.Sprintf("(%s << %d)", a, g.rng.Intn(8))
	default:
		return fmt.Sprintf("(%s >> %d)", a, g.rng.Intn(8))
	}
}

func (g *gen) cond() string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	c := fmt.Sprintf("%s %s %s",
		g.expr(1), ops[g.rng.Intn(len(ops))], g.expr(1))
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("%s && %s %s %s", c, g.rv(), ops[g.rng.Intn(len(ops))], g.expr(1))
	case 1:
		return fmt.Sprintf("%s || %s %s %s", c, g.rv(), ops[g.rng.Intn(len(ops))], g.expr(1))
	}
	return c
}

func (g *gen) block(depth int) {
	n := 1 + g.rng.Intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt(depth)
	}
}

func (g *gen) stmt(depth int) {
	choice := g.rng.Intn(10)
	if depth <= 0 && choice >= 5 {
		choice = g.rng.Intn(5)
	}
	switch choice {
	case 0, 1:
		g.line(fmt.Sprintf("%s = %s;", g.lv(), g.expr(g.cfg.MaxExprDepth)))
	case 2:
		g.line(fmt.Sprintf("garr[%s & 15] = %s;", g.rv(), g.expr(2)))
	case 3:
		g.line(fmt.Sprintf("%s += helper(%s);", g.lv(), g.expr(1)))
	case 4:
		g.line(fmt.Sprintf("__trace(%s);", g.rv()))
	case 5, 6:
		g.line(fmt.Sprintf("if (%s) {", g.cond()))
		g.indent++
		g.block(depth - 1)
		g.indent--
		if g.rng.Intn(2) == 0 {
			g.line("} else {")
			g.indent++
			g.block(depth - 1)
			g.indent--
		}
		g.line("}")
	case 7, 8:
		// Bounded counted loop: always terminates.
		idx := fmt.Sprintf("i%d", g.nextID)
		g.nextID++
		iters := 1 + g.rng.Intn(8)
		g.line(fmt.Sprintf("{ int %s;", idx))
		g.indent++
		g.line(fmt.Sprintf("for (%s = 0; %s < %d; %s++) {", idx, idx, iters, idx))
		g.indent++
		g.ro = append(g.ro, idx)
		g.block(depth - 1)
		g.ro = g.ro[:len(g.ro)-1]
		g.indent--
		g.line("}")
		g.indent--
		g.line("}")
	default:
		g.line(fmt.Sprintf("%s -= %s;", g.lv(), g.expr(2)))
	}
}
