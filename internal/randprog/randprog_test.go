package randprog_test

import (
	"strings"
	"testing"

	"repro/internal/mc"
	"repro/internal/randprog"
)

// TestGeneratorDeterministic: the same seed yields the same program.
func TestGeneratorDeterministic(t *testing.T) {
	a := randprog.New(42, randprog.Config{})
	b := randprog.New(42, randprog.Config{})
	if a.Source != b.Source {
		t.Fatal("generator not deterministic")
	}
	c := randprog.New(43, randprog.Config{})
	if a.Source == c.Source {
		t.Fatal("different seeds produced identical programs")
	}
}

// TestGeneratedProgramsCompile: a spread of seeds and configs all
// produce valid mini-C.
func TestGeneratedProgramsCompile(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p := randprog.New(seed, randprog.Config{
			MaxDepth: int(seed%4) + 1,
			MaxStmts: int(seed%7) + 2,
			Params:   int(seed%4) + 1,
		})
		if p.Entry != "fuzz" || p.Params < 1 || p.Params > 4 {
			t.Fatalf("seed %d: bad metadata %+v", seed, p)
		}
		if _, err := mc.Compile(p.Source); err != nil {
			t.Fatalf("seed %d does not compile: %v\n%s", seed, err, p.Source)
		}
	}
}

// TestGeneratedProgramsAreInteresting: the sources exercise the
// constructs the phases care about.
func TestGeneratedProgramsAreInteresting(t *testing.T) {
	var loops, ifs, calls, arrays int
	for seed := int64(0); seed < 30; seed++ {
		src := randprog.New(seed, randprog.Config{}).Source
		if strings.Contains(src, "for (") {
			loops++
		}
		if strings.Contains(src, "if (") {
			ifs++
		}
		if strings.Contains(src, "helper(") {
			calls++
		}
		if strings.Contains(src, "garr[") {
			arrays++
		}
	}
	for name, n := range map[string]int{"loops": loops, "ifs": ifs, "calls": calls, "arrays": arrays} {
		if n < 10 {
			t.Errorf("only %d of 30 programs contain %s", n, name)
		}
	}
}
