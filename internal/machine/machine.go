// Package machine describes the target processor. The model follows
// the StrongARM SA-1xx used by the paper: a single-issue 32-bit RISC
// with 16 general-purpose registers, immediate operands restricted per
// opcode, no immediate form of multiply, and HI/LO address formation
// for globals. The instruction selection phase consults the machine
// description to decide whether a symbolically combined instruction is
// legal before committing to it, exactly as VPO does.
package machine

import (
	"fmt"

	"repro/internal/rtl"
)

// Desc is a target machine description.
type Desc struct {
	// Name identifies the target.
	Name string
	// WordSize is the size of a machine word in bytes.
	WordSize int32
	// MaxDisp is the largest legal load/store displacement.
	MaxDisp int32
	// MaxALUImm is the largest legal immediate for add/sub/cmp.
	MaxALUImm int32
	// MaxLogicImm is the largest legal immediate for and/or/xor.
	MaxLogicImm int32
	// MaxMovImm is the largest legal immediate for mov (larger
	// constants require a HI/LO pair or literal load).
	MaxMovImm int32
}

// StrongARM returns the machine description used throughout the study.
// The ranges are a simplified but faithful rendering of the ARM
// immediate encodings: 12-bit add/sub/compare immediates, 8-bit logical
// immediates, 16-bit mov immediates and 12-bit load/store offsets.
func StrongARM() *Desc {
	return &Desc{
		Name:        "strongarm",
		WordSize:    4,
		MaxDisp:     4095,
		MaxALUImm:   4095,
		MaxLogicImm: 255,
		MaxMovImm:   65535,
	}
}

// MIPSLike returns an alternative machine description with the flavour
// of a classic MIPS: generous 16-bit immediates on the ALU and logical
// operations, but a cheaper multiplier. The abstract of the paper
// observes that "the best phase order depends on the function being
// compiled, the compiler, and the target architecture characteristics";
// enumerating the same function against two descriptions makes that
// dependence measurable (see TestSpacesDependOnTarget).
func MIPSLike() *Desc {
	return &Desc{
		Name:        "mipslike",
		WordSize:    4,
		MaxDisp:     32767,
		MaxALUImm:   32767,
		MaxLogicImm: 65535,
		MaxMovImm:   32767,
	}
}

// LegalImm reports whether imm may appear as the immediate operand of
// the given opcode.
func (d *Desc) LegalImm(op rtl.Op, imm int32) bool {
	abs := imm
	if abs < 0 {
		abs = -abs
		if abs < 0 { // MinInt32
			return false
		}
	}
	switch op {
	case rtl.OpMov:
		return abs <= d.MaxMovImm
	case rtl.OpAdd, rtl.OpSub, rtl.OpRsb, rtl.OpCmp:
		return abs <= d.MaxALUImm
	case rtl.OpAnd, rtl.OpOr, rtl.OpXor:
		return imm >= 0 && imm <= d.MaxLogicImm
	case rtl.OpShl, rtl.OpShr, rtl.OpSar:
		return imm >= 0 && imm <= 31
	case rtl.OpMul, rtl.OpDiv, rtl.OpRem:
		// No immediate forms: operands must be in registers. This is
		// what gives the strength reduction phase its opportunities.
		return false
	}
	return false
}

// LegalDisp reports whether disp is a legal load/store displacement.
func (d *Desc) LegalDisp(disp int32) bool {
	if disp < 0 {
		disp = -disp
	}
	return disp <= d.MaxDisp
}

// Legal reports whether the instruction as a whole is encodable on the
// target. The instruction selection phase calls this after each
// symbolic combination ("checks if the resulting effect is a legal
// instruction before committing to the transformation", Table 1).
func (d *Desc) Legal(in *rtl.Instr) bool { return d.Check(in) == nil }

// Check explains why an instruction is not encodable on the target, or
// returns nil for a legal instruction. Legal is the boolean view used
// on the hot instruction selection path; the verifier in internal/check
// uses Check so its diagnostics can name the violated encoding limit.
func (d *Desc) Check(in *rtl.Instr) error {
	switch in.Op {
	case rtl.OpNop, rtl.OpMovHi, rtl.OpAddLo, rtl.OpBranch, rtl.OpJmp,
		rtl.OpCall, rtl.OpRet, rtl.OpNeg, rtl.OpNot:
		return nil
	case rtl.OpMov:
		if in.A.Kind == rtl.OperImm && !d.LegalImm(rtl.OpMov, in.A.Imm) {
			return fmt.Errorf("%s: move immediate %d exceeds ±%d", d.Name, in.A.Imm, d.MaxMovImm)
		}
		return nil
	case rtl.OpLoad:
		if in.A.Kind != rtl.OperReg {
			return fmt.Errorf("%s: load base must be a register", d.Name)
		}
		if !d.LegalDisp(in.Disp) {
			return fmt.Errorf("%s: load displacement %d exceeds ±%d", d.Name, in.Disp, d.MaxDisp)
		}
		return nil
	case rtl.OpStore:
		if in.A.Kind != rtl.OperReg || in.B.Kind != rtl.OperReg {
			return fmt.Errorf("%s: store value and base must be registers", d.Name)
		}
		if !d.LegalDisp(in.Disp) {
			return fmt.Errorf("%s: store displacement %d exceeds ±%d", d.Name, in.Disp, d.MaxDisp)
		}
		return nil
	case rtl.OpCmp:
		if in.A.Kind != rtl.OperReg {
			return fmt.Errorf("%s: first comparand must be a register", d.Name)
		}
		if in.B.Kind == rtl.OperImm && !d.LegalImm(rtl.OpCmp, in.B.Imm) {
			return fmt.Errorf("%s: compare immediate %d exceeds ±%d", d.Name, in.B.Imm, d.MaxALUImm)
		}
		return nil
	}
	if in.Op.IsALU() {
		if in.A.Kind != rtl.OperReg {
			return fmt.Errorf("%s: %s operand A must be a register", d.Name, in.Op)
		}
		if in.B.Kind == rtl.OperImm && !d.LegalImm(in.Op, in.B.Imm) {
			return fmt.Errorf("%s: %s has no encoding for immediate %d", d.Name, in.Op, in.B.Imm)
		}
		return nil
	}
	return fmt.Errorf("%s: unknown opcode %s", d.Name, in.Op)
}

// Cost returns the latency of an instruction in cycles on the modeled
// single-issue pipeline. The strength reduction phase replaces an
// instruction only when the replacement sequence is cheaper.
func (d *Desc) Cost(in *rtl.Instr) int {
	switch in.Op {
	case rtl.OpMul:
		return 4
	case rtl.OpDiv, rtl.OpRem:
		return 24
	case rtl.OpLoad:
		return 2
	case rtl.OpNop:
		return 0
	}
	return 1
}
