package machine_test

import (
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/rtl"
)

func TestImmediateRanges(t *testing.T) {
	d := machine.StrongARM()
	cases := []struct {
		op   rtl.Op
		imm  int32
		want bool
	}{
		{rtl.OpMov, 0, true},
		{rtl.OpMov, 65535, true},
		{rtl.OpMov, -65535, true},
		{rtl.OpMov, 65536, false},
		{rtl.OpAdd, 4095, true},
		{rtl.OpAdd, 4096, false},
		{rtl.OpAdd, -4095, true},
		{rtl.OpSub, 4095, true},
		{rtl.OpAnd, 255, true},
		{rtl.OpAnd, 256, false},
		{rtl.OpAnd, -1, false},
		{rtl.OpShl, 31, true},
		{rtl.OpShl, 32, false},
		{rtl.OpShl, -1, false},
		{rtl.OpMul, 2, false}, // no immediate multiply: q's raison d'etre
		{rtl.OpDiv, 2, false},
		{rtl.OpCmp, 4095, true},
	}
	for _, c := range cases {
		if got := d.LegalImm(c.op, c.imm); got != c.want {
			t.Errorf("LegalImm(%v, %d) = %v, want %v", c.op, c.imm, got, c.want)
		}
	}
	if d.LegalImm(rtl.OpMov, -2147483648) {
		t.Error("MinInt32 must not be a legal immediate")
	}
}

func TestLegalInstructions(t *testing.T) {
	d := machine.StrongARM()
	ok := []rtl.Instr{
		rtl.NewMov(rtl.RegR0, rtl.Imm(42)),
		rtl.NewALU(rtl.OpAdd, rtl.RegR0, rtl.R(rtl.RegR1), rtl.Imm(100)),
		rtl.NewLoad(rtl.RegR0, rtl.RegSP, 4092),
		rtl.NewStore(rtl.RegR0, rtl.RegSP, 8),
		rtl.NewCmp(rtl.R(rtl.RegR0), rtl.Imm(0)),
		{Op: rtl.OpMovHi, Dst: rtl.RegR0, Sym: "g"},
		rtl.NewBranch(rtl.RelLT, 0),
	}
	for _, in := range ok {
		in := in
		if !d.Legal(&in) {
			t.Errorf("should be legal: %s", in.String())
		}
	}
	bad := []rtl.Instr{
		rtl.NewALU(rtl.OpMul, rtl.RegR0, rtl.R(rtl.RegR1), rtl.Imm(3)),
		rtl.NewALU(rtl.OpAdd, rtl.RegR0, rtl.R(rtl.RegR1), rtl.Imm(100000)),
		rtl.NewLoad(rtl.RegR0, rtl.RegSP, 5000),
		rtl.NewALU(rtl.OpAdd, rtl.RegR0, rtl.Imm(1), rtl.Imm(2)), // A must be a register
	}
	for _, in := range bad {
		in := in
		if d.Legal(&in) {
			t.Errorf("should be illegal: %s", in.String())
		}
	}
}

func TestCostOrdering(t *testing.T) {
	d := machine.StrongARM()
	mul := rtl.NewALU(rtl.OpMul, rtl.RegR0, rtl.R(rtl.RegR1), rtl.R(rtl.RegR2))
	div := rtl.NewALU(rtl.OpDiv, rtl.RegR0, rtl.R(rtl.RegR1), rtl.R(rtl.RegR2))
	add := rtl.NewALU(rtl.OpAdd, rtl.RegR0, rtl.R(rtl.RegR1), rtl.R(rtl.RegR2))
	shl := rtl.NewALU(rtl.OpShl, rtl.RegR0, rtl.R(rtl.RegR1), rtl.Imm(3))
	if !(d.Cost(&div) > d.Cost(&mul) && d.Cost(&mul) > d.Cost(&add)) {
		t.Error("cost model must rank div > mul > add")
	}
	if d.Cost(&shl) != d.Cost(&add) {
		t.Error("shifts should cost like adds")
	}
	// A shift+add sequence must beat one multiply, or strength
	// reduction can never fire.
	if d.Cost(&shl)+d.Cost(&add) >= d.Cost(&mul)+1 {
		t.Error("strength reduction can never be profitable under this cost model")
	}
}

// TestLegalImmSymmetricForMov: property — legality of Mov immediates
// depends only on magnitude.
func TestLegalImmSymmetricForMov(t *testing.T) {
	d := machine.StrongARM()
	prop := func(v int32) bool {
		if v == -2147483648 {
			return true // unrepresentable magnitude, handled separately
		}
		neg := v
		if neg > 0 {
			neg = -v
		} else {
			neg = v
			v = -v
		}
		return d.LegalImm(rtl.OpMov, v) == d.LegalImm(rtl.OpMov, neg)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
