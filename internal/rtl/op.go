package rtl

// Op enumerates RTL instruction opcodes. The set is deliberately small
// and RISC-like: three-address ALU operations, loads and stores with a
// base register plus immediate displacement, HI/LO global address
// formation exactly as the paper prints it (r[12]=HI[a];
// r[12]=r[12]+LO[a]), compares that set the condition-code register and
// branches that consume it.
type Op uint8

const (
	// OpNop is an empty instruction; it never survives cleanup passes.
	OpNop Op = iota

	// OpMov copies a register or immediate into a register:
	//   r[d] = r[s]   or   r[d] = imm
	OpMov

	// OpMovHi loads the high part of a global symbol's address:
	//   r[d] = HI[sym]
	OpMovHi

	// OpAddLo adds the low part of a global symbol's address:
	//   r[d] = r[s] + LO[sym]
	OpAddLo

	// Three-address ALU operations: r[d] = r[a] op r[b] (B may be an
	// immediate when the machine description allows it).
	OpAdd
	OpSub
	OpRsb // reverse subtract: r[d] = B - r[a]
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl // logical shift left
	OpShr // logical shift right
	OpSar // arithmetic shift right

	// Unary operations: r[d] = op r[a].
	OpNeg
	OpNot

	// OpLoad reads a word from memory: r[d] = M[r[a] + disp].
	OpLoad

	// OpStore writes a word to memory: M[r[a] + disp] = r[s].
	// The value register travels in A, the base register in B.
	OpStore

	// OpCmp sets the condition codes: IC = r[a] ? B.
	OpCmp

	// OpBranch is a conditional branch reading the condition codes:
	//   PC = IC rel 0, L
	OpBranch

	// OpJmp is an unconditional jump: PC = L.
	OpJmp

	// OpCall invokes a function by name. Arguments are in r0-r3; the
	// result, if any, is returned in r0. Calls clobber the caller-save
	// registers.
	OpCall

	// OpRet returns from the function; the return value, if any, is in
	// r0 (marked by the instruction's A operand so liveness sees it).
	OpRet

	numOps // sentinel
)

var opNames = [numOps]string{
	OpNop:    "nop",
	OpMov:    "mov",
	OpMovHi:  "movhi",
	OpAddLo:  "addlo",
	OpAdd:    "add",
	OpSub:    "sub",
	OpRsb:    "rsb",
	OpMul:    "mul",
	OpDiv:    "div",
	OpRem:    "rem",
	OpAnd:    "and",
	OpOr:     "or",
	OpXor:    "xor",
	OpShl:    "shl",
	OpShr:    "shr",
	OpSar:    "sar",
	OpNeg:    "neg",
	OpNot:    "not",
	OpLoad:   "load",
	OpStore:  "store",
	OpCmp:    "cmp",
	OpBranch: "branch",
	OpJmp:    "jmp",
	OpCall:   "call",
	OpRet:    "ret",
}

// String returns the mnemonic name of the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// IsALU reports whether the opcode is a binary ALU operation.
func (o Op) IsALU() bool { return o >= OpAdd && o <= OpSar }

// IsUnary reports whether the opcode is a unary ALU operation.
func (o Op) IsUnary() bool { return o == OpNeg || o == OpNot }

// IsControl reports whether the opcode transfers control. Control
// instructions may appear only as the final instruction of a block.
func (o Op) IsControl() bool {
	return o == OpBranch || o == OpJmp || o == OpRet
}

// Commutative reports whether the binary operation commutes, which the
// common subexpression and instruction selection phases use to
// canonicalize expressions.
func (o Op) Commutative() bool {
	switch o {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor:
		return true
	}
	return false
}

// symbol used by the paper-style printer for each ALU op.
var opSymbols = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpRem: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>u", OpSar: ">>",
}

// Rel is a comparison relation used by conditional branches.
type Rel uint8

const (
	RelEQ Rel = iota
	RelNE
	RelLT
	RelLE
	RelGT
	RelGE
	// Unsigned relations, used by pointer and unsigned comparisons.
	RelULT
	RelULE
	RelUGT
	RelUGE

	numRels
)

var relNames = [numRels]string{"==", "!=", "<", "<=", ">", ">=", "<u", "<=u", ">u", ">=u"}

// String renders the relation as it appears in the paper's RTL
// notation, e.g. "PC=IC<0,L3".
func (r Rel) String() string {
	if int(r) < len(relNames) {
		return relNames[r]
	}
	return "?"
}

// Negate returns the complementary relation, used by the reverse
// branches phase to flip a conditional branch over an unconditional
// jump.
func (r Rel) Negate() Rel {
	switch r {
	case RelEQ:
		return RelNE
	case RelNE:
		return RelEQ
	case RelLT:
		return RelGE
	case RelLE:
		return RelGT
	case RelGT:
		return RelLE
	case RelGE:
		return RelLT
	case RelULT:
		return RelUGE
	case RelULE:
		return RelUGT
	case RelUGT:
		return RelULE
	case RelUGE:
		return RelULT
	}
	return r
}

// Swap returns the relation that holds when the comparison operands are
// exchanged (a R b  ==  b Swap(R) a).
func (r Rel) Swap() Rel {
	switch r {
	case RelLT:
		return RelGT
	case RelLE:
		return RelGE
	case RelGT:
		return RelLT
	case RelGE:
		return RelLE
	case RelULT:
		return RelUGT
	case RelULE:
		return RelUGE
	case RelUGT:
		return RelULT
	case RelUGE:
		return RelULE
	}
	return r // EQ and NE are symmetric
}

// Eval applies the relation to two values, treating them as signed or
// unsigned 32-bit integers as appropriate.
func (r Rel) Eval(a, b int32) bool {
	switch r {
	case RelEQ:
		return a == b
	case RelNE:
		return a != b
	case RelLT:
		return a < b
	case RelLE:
		return a <= b
	case RelGT:
		return a > b
	case RelGE:
		return a >= b
	case RelULT:
		return uint32(a) < uint32(b)
	case RelULE:
		return uint32(a) <= uint32(b)
	case RelUGT:
		return uint32(a) > uint32(b)
	case RelUGE:
		return uint32(a) >= uint32(b)
	}
	return false
}
