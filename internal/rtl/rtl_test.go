package rtl_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rtl"
)

// diamond builds:
//
//	L0: cmp; branch L2
//	L1: mov; jmp L3
//	L2: mov
//	L3: ret
func diamond() *rtl.Func {
	f := rtl.NewFunc("diamond", 1, true)
	b0 := f.Entry()
	b1 := f.AddBlock()
	b2 := f.AddBlock()
	b3 := f.AddBlock()
	b0.Instrs = append(b0.Instrs,
		rtl.NewCmp(rtl.R(rtl.RegR0), rtl.Imm(0)),
		rtl.NewBranch(rtl.RelLT, b2.ID))
	b1.Instrs = append(b1.Instrs,
		rtl.NewMov(rtl.RegR0, rtl.Imm(1)),
		rtl.NewJmp(b3.ID))
	b2.Instrs = append(b2.Instrs,
		rtl.NewMov(rtl.RegR0, rtl.Imm(2)))
	b3.Instrs = append(b3.Instrs,
		rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)})
	return f
}

func TestCFGDiamond(t *testing.T) {
	f := diamond()
	g := rtl.ComputeCFG(f)
	wantSuccs := [][]int{{2, 1}, {3}, {3}, nil}
	for i, want := range wantSuccs {
		got := g.Succs[i]
		if len(got) != len(want) {
			t.Fatalf("succs[%d] = %v, want %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("succs[%d] = %v, want %v", i, got, want)
			}
		}
	}
	if len(g.Preds[3]) != 2 {
		t.Fatalf("preds[3] = %v", g.Preds[3])
	}
	if p, ok := g.Pos(f.Blocks[2].ID); !ok || p != 2 {
		t.Fatalf("Pos lookup failed")
	}
	if _, ok := g.Pos(999); ok {
		t.Fatal("Pos found a nonexistent block")
	}
}

func TestDominatorsDiamond(t *testing.T) {
	g := rtl.ComputeCFG(diamond())
	idom := g.Dominators()
	// Entry dominates everything; the join's idom is the entry.
	if idom[3] != 0 {
		t.Fatalf("idom of join = %d, want 0", idom[3])
	}
	if !rtl.Dominates(idom, 0, 3) {
		t.Fatal("entry must dominate the join")
	}
	if rtl.Dominates(idom, 1, 3) || rtl.Dominates(idom, 2, 3) {
		t.Fatal("neither branch arm dominates the join")
	}
	if !rtl.Dominates(idom, 2, 2) {
		t.Fatal("a block dominates itself")
	}
}

// loopFunc builds a simple counted loop.
func loopFunc() *rtl.Func {
	f := rtl.NewFunc("loop", 1, true)
	b0 := f.Entry()
	head := f.AddBlock()
	body := f.AddBlock()
	exit := f.AddBlock()
	b0.Instrs = append(b0.Instrs, rtl.NewMov(rtl.RegR1, rtl.Imm(0)))
	head.Instrs = append(head.Instrs,
		rtl.NewCmp(rtl.R(rtl.RegR1), rtl.R(rtl.RegR0)),
		rtl.NewBranch(rtl.RelGE, exit.ID))
	body.Instrs = append(body.Instrs,
		rtl.NewALU(rtl.OpAdd, rtl.RegR1, rtl.R(rtl.RegR1), rtl.Imm(1)),
		rtl.NewJmp(head.ID))
	exit.Instrs = append(exit.Instrs,
		rtl.NewMov(rtl.RegR0, rtl.R(rtl.RegR1)),
		rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)})
	return f
}

func TestFindLoops(t *testing.T) {
	g := rtl.ComputeCFG(loopFunc())
	loops := g.FindLoops()
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != 1 {
		t.Fatalf("header %d, want 1", l.Header)
	}
	if !l.Contains(2) || l.Contains(3) || l.Contains(0) {
		t.Fatalf("loop membership wrong: %v", l.Blocks)
	}
	if exits := l.Exits(g); len(exits) != 1 || exits[0] != 1 {
		t.Fatalf("exits = %v", exits)
	}
	if l.Depth != 1 {
		t.Fatalf("depth = %d", l.Depth)
	}
}

func TestLivenessLoop(t *testing.T) {
	f := loopFunc()
	g := rtl.ComputeCFG(f)
	lv := rtl.ComputeLiveness(g)
	// r0 (the bound) is live into the loop head; r1 (the counter) too.
	if !lv.In[1].Has(rtl.RegR0) || !lv.In[1].Has(rtl.RegR1) {
		t.Fatalf("loop head live-in misses the counter or bound")
	}
	// Nothing but SP is live out of the exit block.
	if lv.Out[3].Has(rtl.RegR1) {
		t.Fatal("r1 live after return")
	}
}

func TestCleanupMergesAndDeletes(t *testing.T) {
	f := rtl.NewFunc("c", 0, false)
	a := f.Entry()
	empty := f.AddBlock()
	c := f.AddBlock()
	a.Instrs = append(a.Instrs, rtl.NewMov(rtl.RegR0, rtl.Imm(1)))
	// empty block falls to c
	c.Instrs = append(c.Instrs, rtl.Instr{Op: rtl.OpRet})
	_ = empty
	rtl.Cleanup(f)
	if len(f.Blocks) != 1 {
		t.Fatalf("cleanup left %d blocks, want 1:\n%s", len(f.Blocks), f)
	}
	if n := f.NumInstrs(); n != 2 {
		t.Fatalf("cleanup changed the instructions: %d", n)
	}
}

func TestCleanupKeepsBranchTargets(t *testing.T) {
	f := rtl.NewFunc("c2", 1, false)
	a := f.Entry()
	empty := f.AddBlock()
	c := f.AddBlock()
	a.Instrs = append(a.Instrs,
		rtl.NewCmp(rtl.R(rtl.RegR0), rtl.Imm(0)),
		rtl.NewBranch(rtl.RelEQ, empty.ID))
	c.Instrs = append(c.Instrs, rtl.Instr{Op: rtl.OpRet})
	rtl.Cleanup(f)
	if err := rtl.Validate(f); err != nil {
		t.Fatalf("invalid after cleanup: %v\n%s", err, f)
	}
	// The branch must now target the block that followed the empty
	// one.
	last := f.Blocks[0].Last()
	if last.Op != rtl.OpBranch {
		t.Fatalf("lost the branch:\n%s", f)
	}
	if idx := f.BlockIndex(last.Target); idx == -1 {
		t.Fatalf("branch target dangles:\n%s", f)
	}
}

func TestValidateCatchesBrokenFunctions(t *testing.T) {
	// Control transfer in the middle of a block.
	f := rtl.NewFunc("bad", 0, false)
	f.Entry().Instrs = append(f.Entry().Instrs,
		rtl.NewJmp(0),
		rtl.NewMov(rtl.RegR0, rtl.Imm(1)),
		rtl.Instr{Op: rtl.OpRet})
	if err := rtl.Validate(f); err == nil {
		t.Fatal("mid-block jump not caught")
	}

	// Dangling branch target.
	g := rtl.NewFunc("bad2", 0, false)
	g.Entry().Instrs = append(g.Entry().Instrs, rtl.NewJmp(42))
	if err := rtl.Validate(g); err == nil {
		t.Fatal("dangling target not caught")
	}

	// Falling off the end.
	h := rtl.NewFunc("bad3", 0, false)
	h.Entry().Instrs = append(h.Entry().Instrs, rtl.NewMov(rtl.RegR0, rtl.Imm(1)))
	if err := rtl.Validate(h); err == nil {
		t.Fatal("fall-off-the-end not caught")
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := loopFunc()
	g := f.Clone()
	g.Blocks[0].Instrs[0].A = rtl.Imm(99)
	g.Blocks[2].Instrs = append(g.Blocks[2].Instrs[:0:0], g.Blocks[2].Instrs...)
	if f.Blocks[0].Instrs[0].A.Imm == 99 {
		t.Fatal("clone shares instruction storage")
	}
	g2 := f.Clone()
	g2.Blocks[1].Instrs = append(g2.Blocks[1].Instrs, rtl.Instr{Op: rtl.OpNop})
	if len(f.Blocks[1].Instrs) == len(g2.Blocks[1].Instrs) {
		t.Fatal("clone shares block storage")
	}
}

func TestInstrStringsMatchPaperNotation(t *testing.T) {
	cases := map[string]rtl.Instr{
		"r[3]=r[4]+1;":    rtl.NewALU(rtl.OpAdd, rtl.Reg(3), rtl.R(rtl.Reg(4)), rtl.Imm(1)),
		"r[2]=1;":         rtl.NewMov(rtl.Reg(2), rtl.Imm(1)),
		"r[8]=M[r[1]];":   rtl.NewLoad(rtl.Reg(8), rtl.Reg(1), 0),
		"M[r[1]+4]=r[8];": rtl.NewStore(rtl.Reg(8), rtl.Reg(1), 4),
		"IC=r[1]?r[9];":   rtl.NewCmp(rtl.R(rtl.Reg(1)), rtl.R(rtl.Reg(9))),
		"PC=IC<0,L3;":     rtl.NewBranch(rtl.RelLT, 3),
		"PC=L7;":          rtl.NewJmp(7),
		"r[12]=HI[a];":    {Op: rtl.OpMovHi, Dst: rtl.Reg(12), Sym: "a"},
		"r[12]=r[12]+LO[a];": {
			Op: rtl.OpAddLo, Dst: rtl.Reg(12), A: rtl.R(rtl.Reg(12)), Sym: "a"},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestReplaceUsesRespectsOperandRoles(t *testing.T) {
	// A load base may be replaced by a register but never by an
	// immediate.
	ld := rtl.NewLoad(rtl.Reg(40), rtl.Reg(41), 8)
	if ld.ReplaceUses(rtl.Reg(41), rtl.Imm(5)) {
		t.Fatal("folded an immediate into a load base")
	}
	if !ld.ReplaceUses(rtl.Reg(41), rtl.R(rtl.Reg(42))) {
		t.Fatal("register substitution into load base failed")
	}
	// A return's r0 is pinned by the calling convention.
	ret := rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)}
	if ret.ReplaceUses(rtl.RegR0, rtl.R(rtl.Reg(40))) {
		t.Fatal("substituted the return register")
	}
}

func TestRelProperties(t *testing.T) {
	// Negate is an involution and flips Eval; Swap mirrors operand
	// exchange.
	rels := []rtl.Rel{rtl.RelEQ, rtl.RelNE, rtl.RelLT, rtl.RelLE, rtl.RelGT,
		rtl.RelGE, rtl.RelULT, rtl.RelULE, rtl.RelUGT, rtl.RelUGE}
	prop := func(a, b int32) bool {
		for _, r := range rels {
			if r.Negate().Negate() != r {
				return false
			}
			if r.Eval(a, b) == r.Negate().Eval(a, b) {
				return false
			}
			if r.Eval(a, b) != r.Swap().Eval(b, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegSetProperties(t *testing.T) {
	prop := func(xs []uint16, ys []uint16) bool {
		a := rtl.NewRegSet(64)
		b := rtl.NewRegSet(64)
		seen := map[rtl.Reg]bool{}
		for _, x := range xs {
			r := rtl.Reg(x % 2048)
			a.Add(r)
			seen[r] = true
		}
		for r := range seen {
			if !a.Has(r) {
				return false
			}
		}
		if a.Len() != len(seen) {
			return false
		}
		for _, y := range ys {
			b.Add(rtl.Reg(y % 2048))
		}
		u := a.Copy()
		u.UnionWith(b)
		ok := true
		b.ForEach(func(r rtl.Reg) {
			if !u.Has(r) {
				ok = false
			}
		})
		a.ForEach(func(r rtl.Reg) {
			if !u.Has(r) {
				ok = false
			}
		})
		// Removing everything from a empties it.
		for r := range seen {
			a.Remove(r)
		}
		return ok && a.Len() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFuncStringContainsLabels(t *testing.T) {
	s := loopFunc().String()
	for _, frag := range []string{"L0:", "L1:", "PC=IC>=0,L3;", "RET r[0];"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("missing %q in:\n%s", frag, s)
		}
	}
}

func TestRetargetBranches(t *testing.T) {
	f := loopFunc()
	n := rtl.RetargetBranches(f, 1, 3)
	if n != 1 {
		t.Fatalf("retargeted %d instructions, want 1", n)
	}
	if f.Blocks[2].Last().Target != 3 {
		t.Fatal("jump not retargeted")
	}
}
