package rtl

import "math/bits"

// RegSet is a dense bitset over register numbers, used by the dataflow
// analyses. The zero value is empty but has no capacity; create sets
// with NewRegSet.
type RegSet struct {
	words []uint64
}

// NewRegSet returns an empty set able to hold registers [0, n).
func NewRegSet(n int) RegSet {
	return RegSet{words: make([]uint64, (n+63)/64)}
}

// Add inserts register r, growing the set if necessary.
func (s *RegSet) Add(r Reg) {
	w := int(r) / 64
	for w >= len(s.words) {
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << (uint(r) % 64)
}

// Remove deletes register r.
func (s *RegSet) Remove(r Reg) {
	w := int(r) / 64
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(r) % 64)
	}
}

// Has reports whether the set contains register r.
func (s *RegSet) Has(r Reg) bool {
	w := int(r) / 64
	return w < len(s.words) && s.words[w]&(1<<(uint(r)%64)) != 0
}

// UnionWith adds every element of t to s and reports whether s changed.
func (s *RegSet) UnionWith(t RegSet) bool {
	for len(s.words) < len(t.words) {
		s.words = append(s.words, 0)
	}
	changed := false
	for i, w := range t.words {
		if nw := s.words[i] | w; nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// IntersectWith removes from s every element absent from t and reports
// whether s changed. It is the meet operator of the forward
// must-be-assigned analysis in internal/check.
func (s *RegSet) IntersectWith(t RegSet) bool {
	changed := false
	for i := range s.words {
		var w uint64
		if i < len(t.words) {
			w = t.words[i]
		}
		if nw := s.words[i] & w; nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Fill adds every register in [0, n) to the set.
func (s *RegSet) Fill(n int) {
	for r := 0; r < n; r++ {
		s.Add(Reg(r))
	}
}

// Copy returns an independent copy of the set.
func (s RegSet) Copy() RegSet {
	return RegSet{words: append([]uint64(nil), s.words...)}
}

// Clear empties the set in place.
func (s *RegSet) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Equal reports whether s and t contain the same registers,
// regardless of capacity.
func (s RegSet) Equal(t RegSet) bool {
	a, b := s.words, t.words
	if len(a) < len(b) {
		a, b = b, a
	}
	for i, w := range b {
		if a[i] != w {
			return false
		}
	}
	for _, w := range a[len(b):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Len returns the number of elements.
func (s RegSet) Len() int {
	n := 0
	for _, w := range s.words {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// ForEach invokes fn for every register in the set, in increasing
// order.
func (s RegSet) ForEach(fn func(Reg)) {
	for i, w := range s.words {
		for w != 0 {
			r := Reg(i*64 + bits.TrailingZeros64(w))
			fn(r)
			w &= w - 1
		}
	}
}

// Liveness holds per-block live-in/live-out register sets, indexed by
// layout position.
type Liveness struct {
	In  []RegSet
	Out []RegSet
}

// ComputeLiveness runs the standard backward iterative live-variable
// analysis over the CFG. At a return, r0 is live when the function
// yields a value (encoded by the Ret instruction's use of r0), and the
// callee-save registers plus SP are live so that no phase deletes the
// code that preserves them once register assignment has run.
func ComputeLiveness(g *CFG) *Liveness {
	f := g.F
	n := len(f.Blocks)
	maxReg := int(f.NextPseudo)
	// All per-block sets share one backing array, and the four header
	// slices share another: liveness runs inside nearly every phase
	// attempt of the exhaustive search, so the allocation count
	// matters.
	sets := make([]RegSet, 4*n)
	lv := &Liveness{In: sets[:n:n], Out: sets[n : 2*n : 2*n]}
	use := sets[2*n : 3*n : 3*n]
	def := sets[3*n:]
	words := (maxReg + 63) / 64
	if words == 0 {
		words = 1
	}
	backing := make([]uint64, (4*n+1)*words)
	slot := func(k int) RegSet { return RegSet{words: backing[k*words : (k+1)*words : (k+1)*words]} }
	var buf [8]Reg
	for i, b := range f.Blocks {
		use[i] = slot(4 * i)
		def[i] = slot(4*i + 1)
		lv.In[i] = slot(4*i + 2)
		lv.Out[i] = slot(4*i + 3)
		for j := range b.Instrs {
			in := &b.Instrs[j]
			for _, r := range in.Uses(buf[:0]) {
				if !def[i].Has(r) {
					use[i].Add(r)
				}
			}
			for _, r := range in.Defs(buf[:0]) {
				def[i].Add(r)
			}
		}
	}
	// Registers live at function exit: only the stack pointer. The
	// callee-save convention is not modeled as exit liveness — the
	// compulsory entry/exit fixup that saves and restores used
	// callee-save registers runs after the last code-improving phase,
	// so during optimization those registers are ordinary storage.
	exitLive := RegSet{words: backing[4*n*words:]}
	exitLive.Add(RegSP)
	order := g.RPO()
	// One scratch set serves every in = use ∪ (out - def) evaluation;
	// copying out per block per fixpoint iteration dominated the
	// allocation profile of this analysis.
	var scratch RegSet
	for changed := true; changed; {
		changed = false
		for i := len(order) - 1; i >= 0; i-- {
			b := order[i]
			out := &lv.Out[b]
			if blk := f.Blocks[b]; blk.EndsInControl() && blk.Last().Op == OpRet {
				if out.UnionWith(exitLive) {
					changed = true
				}
			}
			for _, s := range g.Succs[b] {
				if out.UnionWith(lv.In[s]) {
					changed = true
				}
			}
			// in = use ∪ (out - def)
			newIn := &scratch
			newIn.words = append(newIn.words[:0], out.words...)
			def[b].ForEach(func(r Reg) { newIn.Remove(r) })
			newIn.UnionWith(use[b])
			if lv.In[b].UnionWith(*newIn) {
				changed = true
			}
		}
	}
	return lv
}

// LiveAtInstr returns the registers live immediately after instruction
// idx in the block at layout position bpos (i.e. between idx and
// idx+1). Computing this per query is quadratic but the functions in
// this study are small; phases that sweep a whole block use
// BlockLiveness instead.
func (lv *Liveness) LiveAtInstr(g *CFG, bpos, idx int) RegSet {
	steps := BlockLiveness(g, lv, bpos)
	return steps[idx+1]
}

// BlockLiveness returns, for the block at layout position bpos, the
// live register set at every instruction boundary: element i is the set
// live immediately before instruction i, and element len(Instrs) is the
// block's live-out set.
func BlockLiveness(g *CFG, lv *Liveness, bpos int) []RegSet {
	b := g.F.Blocks[bpos]
	n := len(b.Instrs)
	steps := make([]RegSet, n+1)
	cur := lv.Out[bpos].Copy()
	// All step snapshots share one backing array; every register that
	// can appear in an instruction is below the width of the liveness
	// sets, so the cursor never grows.
	words := len(cur.words)
	backing := make([]uint64, (n+1)*words)
	snap := func(i int) {
		slot := backing[i*words : (i+1)*words : (i+1)*words]
		copy(slot, cur.words)
		steps[i] = RegSet{words: slot}
	}
	snap(n)
	var buf [8]Reg
	for i := n - 1; i >= 0; i-- {
		in := &b.Instrs[i]
		for _, r := range in.Defs(buf[:0]) {
			cur.Remove(r)
		}
		for _, r := range in.Uses(buf[:0]) {
			cur.Add(r)
		}
		snap(i)
	}
	return steps
}
