package rtl

import "sort"

// Loop is a natural loop: the set of blocks (layout positions) from
// which the back-edge tails can reach the header without passing
// through the header. Loops are detected from back edges t->h where h
// dominates t.
type Loop struct {
	Header int          // layout position of the loop header
	Blocks map[int]bool // members, including the header
	Tails  []int        // back-edge sources
	Depth  int          // nesting depth, outermost = 1
}

// Contains reports whether the loop contains the block at layout
// position i.
func (l *Loop) Contains(i int) bool { return l.Blocks[i] }

// Exits returns the in-loop blocks that have a successor outside the
// loop, in layout order.
func (l *Loop) Exits(g *CFG) []int {
	var out []int
	for b := range l.Blocks {
		for _, s := range g.Succs[b] {
			if !l.Blocks[s] {
				out = append(out, b)
				break
			}
		}
	}
	sort.Ints(out)
	return out
}

// FindLoops detects all natural loops in the CFG, merging loops that
// share a header, and computes nesting depths. Loops are returned
// ordered by decreasing depth (innermost first), which is the order the
// loop transformation phase processes them in ("ordered by loop nesting
// level", Table 1).
func (g *CFG) FindLoops() []*Loop {
	idom := g.Dominators()
	reach := g.Reachable()
	byHeader := make(map[int]*Loop)
	for t := range g.Succs {
		if !reach[t] {
			continue
		}
		for _, h := range g.Succs[t] {
			if !Dominates(idom, h, t) {
				continue
			}
			l := byHeader[h]
			if l == nil {
				l = &Loop{Header: h, Blocks: map[int]bool{h: true}}
				byHeader[h] = l
			}
			l.Tails = append(l.Tails, t)
			// Collect the loop body: walk backwards from the tail.
			stack := []int{t}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Blocks[b] {
					continue
				}
				l.Blocks[b] = true
				for _, p := range g.Preds[b] {
					if reach[p] {
						stack = append(stack, p)
					}
				}
			}
		}
	}
	loops := make([]*Loop, 0, len(byHeader))
	for _, l := range byHeader {
		loops = append(loops, l)
	}
	// Nesting depth: a loop's depth is 1 plus the number of other
	// loops that strictly contain its header and body.
	for _, l := range loops {
		l.Depth = 1
		for _, other := range loops {
			if other == l || len(other.Blocks) <= len(l.Blocks) {
				continue
			}
			contained := true
			for b := range l.Blocks {
				if !other.Blocks[b] {
					contained = false
					break
				}
			}
			if contained && other.Header != l.Header {
				l.Depth++
			}
		}
	}
	sort.Slice(loops, func(i, j int) bool {
		if loops[i].Depth != loops[j].Depth {
			return loops[i].Depth > loops[j].Depth
		}
		return loops[i].Header < loops[j].Header
	})
	return loops
}

// NumLoops returns the number of natural loops in the function,
// matching the paper's "Loop" statistic.
func NumLoops(f *Func) int {
	return len(ComputeCFG(f).FindLoops())
}
