package rtl

// Dominators computes the immediate-dominator array for the CFG using
// the iterative algorithm of Cooper, Harvey and Kennedy. idom[i] is the
// layout position of the immediate dominator of block i; the entry
// block is its own idom; unreachable blocks get idom -1.
func (g *CFG) Dominators() []int {
	n := len(g.Succs)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	if n == 0 {
		return idom
	}
	rpo := g.RPO()
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	reach := g.Reachable()
	pos := 0
	for _, b := range rpo {
		if reach[b] {
			rpoNum[b] = pos
			pos++
		}
	}
	idom[0] = 0
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == 0 || !reach[b] {
				continue
			}
			newIdom := -1
			for _, p := range g.Preds[b] {
				if !reach[p] || idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b given the idom
// array (both layout positions; a block dominates itself). Unreachable
// blocks are dominated by nothing and dominate nothing but themselves.
func Dominates(idom []int, a, b int) bool {
	if a == b {
		return true
	}
	if idom[b] == -1 || idom[a] == -1 {
		return false
	}
	for b != 0 {
		b = idom[b]
		if b == a {
			return true
		}
	}
	return false
}
