package rtl

import "fmt"

// Validate checks the structural invariants every phase must preserve:
//
//   - control instructions appear only at the end of a block;
//   - every branch/jump target names an existing block;
//   - every branch/jump target names a block reachable from entry
//     (an edge out of live code can only lead to live code, so a
//     dangling target marks dead control flow that the dataflow
//     analyses cannot reason about);
//   - the final block does not fall off the end of the function;
//   - block IDs are unique and below NextBlockID;
//   - after register assignment no pseudo registers remain.
//
// Validate is the cheap structural tier: the deeper semantic rules
// (def-before-use, condition-code discipline, machine legality,
// callee-save preservation) live in internal/check, which assumes a
// function that already passes Validate.
//
// It returns the first violation found, or nil.
func Validate(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("%s: function has no blocks", f.Name)
	}
	ids := make(map[int]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		if ids[b.ID] {
			return fmt.Errorf("%s: duplicate block id L%d", f.Name, b.ID)
		}
		if b.ID >= f.NextBlockID {
			return fmt.Errorf("%s: block id L%d >= NextBlockID %d", f.Name, b.ID, f.NextBlockID)
		}
		ids[b.ID] = true
	}
	var buf [8]Reg
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op.IsControl() && i != len(b.Instrs)-1 {
				return fmt.Errorf("%s: L%d instr %d: control instruction %q not at block end",
					f.Name, b.ID, i, in.String())
			}
			if in.Op == OpBranch || in.Op == OpJmp {
				if !ids[in.Target] {
					return fmt.Errorf("%s: L%d instr %d: target L%d does not exist",
						f.Name, b.ID, i, in.Target)
				}
			}
			if f.RegAssigned {
				for _, r := range in.Defs(buf[:0]) {
					if r.IsPseudo() {
						return fmt.Errorf("%s: L%d instr %d: pseudo register %s after register assignment",
							f.Name, b.ID, i, r)
					}
				}
				for _, r := range in.Uses(buf[:0]) {
					if r.IsPseudo() {
						return fmt.Errorf("%s: L%d instr %d: pseudo register %s after register assignment",
							f.Name, b.ID, i, r)
					}
				}
			}
		}
	}
	last := f.Blocks[len(f.Blocks)-1]
	if lastIn := last.Last(); lastIn == nil || (lastIn.Op != OpRet && lastIn.Op != OpJmp) {
		return fmt.Errorf("%s: final block L%d falls off the end of the function", f.Name, last.ID)
	}
	// With the per-block structure sound, the CFG is computable; reject
	// branches whose targets sit in code unreachable from the entry.
	g := ComputeCFG(f)
	reach := g.Reachable()
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != OpBranch && in.Op != OpJmp {
				continue
			}
			if pos := g.MustPos(in.Target); !reach[pos] {
				return fmt.Errorf("%s: L%d instr %d: target L%d is unreachable from entry",
					f.Name, b.ID, i, in.Target)
			}
		}
	}
	return nil
}

// MustValidate panics when f violates a structural invariant; it is a
// convenience for tests and for the enumeration engine's paranoid mode.
func MustValidate(f *Func) {
	if err := Validate(f); err != nil {
		panic(err)
	}
}
