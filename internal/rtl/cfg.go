package rtl

// CFG is a control-flow graph snapshot for a function. Nodes are
// identified by layout position (index into Func.Blocks), which keeps
// the successor computation trivially in sync with fall-through
// semantics. A CFG is invalidated by any structural mutation; phases
// recompute it after changing the block list.
//
// The edge lists share two backing arrays (successor counts are at
// most two, predecessor lists are laid out CSR-style): the exhaustive
// search recomputes CFGs millions of times, so the representation is
// kept to a handful of allocations.
type CFG struct {
	F     *Func
	Succs [][]int // layout position -> successor positions
	Preds [][]int

	index []int // block ID -> layout position, -1 when absent
	rpo   []int // cached reverse post-order, nil until first RPO call
}

// Pos returns the layout position of the block with the given ID and
// whether it exists.
func (g *CFG) Pos(id int) (int, bool) {
	if id < 0 || id >= len(g.index) || g.index[id] < 0 {
		return -1, false
	}
	return g.index[id], true
}

// MustPos returns the layout position of an existing block ID.
func (g *CFG) MustPos(id int) int {
	p, ok := g.Pos(id)
	if !ok {
		panic("rtl: unknown block id in CFG")
	}
	return p
}

// ComputeCFG builds the control-flow graph for f.
func ComputeCFG(f *Func) *CFG {
	n := len(f.Blocks)
	// The search recomputes CFGs once per phase attempt (and more
	// during cleanup), so storage is pooled into three allocations:
	// the edge-list headers, one int array carrying the ID index and
	// both CSR edge backings (a block has at most two successors), and
	// the CFG itself.
	hdrs := make([][]int, 2*n)
	buf := make([]int, f.NextBlockID+4*n)
	g := &CFG{
		F:     f,
		Succs: hdrs[:n:n],
		Preds: hdrs[n:],
		index: buf[:f.NextBlockID:f.NextBlockID],
	}
	for i := range g.index {
		g.index[i] = -1
	}
	for i, b := range f.Blocks {
		g.index[b.ID] = i
	}
	succBack := buf[f.NextBlockID : f.NextBlockID : f.NextBlockID+2*n]
	predBuf := buf[f.NextBlockID+2*n:]
	var cntArr [64]int
	var predCount []int
	if n <= len(cntArr) {
		predCount = cntArr[:n]
		clear(predCount)
	} else {
		predCount = make([]int, n)
	}
	for i, b := range f.Blocks {
		start := len(succBack)
		last := b.Last()
		switch {
		case last == nil:
			if i+1 < n {
				succBack = append(succBack, i+1)
			}
		case last.Op == OpJmp:
			succBack = append(succBack, g.index[last.Target])
		case last.Op == OpRet:
			// no successors
		case last.Op == OpBranch:
			t := g.index[last.Target]
			succBack = append(succBack, t)
			if i+1 < n && t != i+1 {
				succBack = append(succBack, i+1)
			}
		default:
			if i+1 < n {
				succBack = append(succBack, i+1)
			}
		}
		g.Succs[i] = succBack[start:len(succBack):len(succBack)]
		for _, s := range g.Succs[i] {
			predCount[s]++
		}
	}
	predBack := predBuf[:0]
	for i := 0; i < n; i++ {
		start := len(predBack)
		predBack = predBack[:start+predCount[i]]
		g.Preds[i] = predBack[start : start : start+predCount[i]]
	}
	for i := range f.Blocks {
		for _, s := range g.Succs[i] {
			g.Preds[s] = append(g.Preds[s], i)
		}
	}
	return g
}

// Reachable returns the set of layout positions reachable from entry.
func (g *CFG) Reachable() []bool {
	seen := make([]bool, len(g.Succs))
	if len(seen) == 0 {
		return seen
	}
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Succs[b] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// RPO returns the blocks' layout positions in reverse post-order from
// the entry. Unreachable blocks are appended at the end in layout
// order so analyses still cover them. The order is computed once per
// CFG and cached — several analyses traverse the same snapshot, and
// callers must not mutate the returned slice.
func (g *CFG) RPO() []int {
	if g.rpo != nil {
		return g.rpo
	}
	n := len(g.Succs)
	seen := make([]bool, n)
	arr := make([]int, 2*n)
	post := arr[:0:n]
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range g.Succs[b] {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if n > 0 {
		dfs(0)
	}
	order := arr[n:n]
	for i := len(post) - 1; i >= 0; i-- {
		order = append(order, post[i])
	}
	for b := 0; b < n; b++ {
		if !seen[b] {
			order = append(order, b)
		}
	}
	g.rpo = order
	return order
}

// FallsThrough reports whether the block at layout position i continues
// into block i+1 when executed.
func (g *CFG) FallsThrough(i int) bool {
	b := g.F.Blocks[i]
	last := b.Last()
	if last == nil {
		return true
	}
	switch last.Op {
	case OpJmp, OpRet:
		return false
	}
	return true
}

// RetargetBranches rewrites every branch or jump targeting block oldID
// to target newID instead. It returns the number of rewritten
// instructions.
func RetargetBranches(f *Func, oldID, newID int) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if (in.Op == OpBranch || in.Op == OpJmp) && in.Target == oldID {
				in.Target = newID
				n++
			}
		}
	}
	return n
}

// Cleanup performs the two compulsory control-flow normalizations that
// VPO applies implicitly after every transformation: eliminating empty
// basic blocks and merging a block into its fall-through predecessor
// when that predecessor is its only predecessor. Neither changes the
// generated instructions — only the internal block structure — which is
// why the paper excludes them from the candidate phase set.
//
// Cleanup never deletes jumps or moves code; those effects belong to
// the explicit phases (useless jump removal, block reordering, ...).
func Cleanup(f *Func) {
	for {
		changed := false
		// Eliminate empty blocks: redirect references to the block's
		// fall-through successor, then remove the block. The final
		// block cannot be empty in a well-formed function unless it is
		// unreferenced.
		for i := 0; i < len(f.Blocks); i++ {
			b := f.Blocks[i]
			if len(b.Instrs) != 0 {
				continue
			}
			if i+1 < len(f.Blocks) {
				RetargetBranches(f, b.ID, f.Blocks[i+1].ID)
				f.RemoveBlockAt(i)
				changed = true
				i--
				continue
			}
			// Trailing empty block: removable only when nothing
			// references it and nothing falls into it.
			g := ComputeCFG(f)
			if len(g.Preds[i]) == 0 {
				f.RemoveBlockAt(i)
				changed = true
			}
		}
		// Merge fall-through pairs with a unique predecessor.
		g := ComputeCFG(f)
		for i := 0; i+1 < len(f.Blocks); i++ {
			b := f.Blocks[i]
			if b.EndsInControl() {
				continue
			}
			next := i + 1
			if len(g.Preds[next]) != 1 || g.Preds[next][0] != i {
				continue
			}
			// Fold block next into b. Branches cannot target next
			// (it has a single fall-through predecessor), so no
			// retargeting is needed.
			b.Instrs = append(b.Instrs, f.Blocks[next].Instrs...)
			f.RemoveBlockAt(next)
			changed = true
			g = ComputeCFG(f)
			i--
		}
		if !changed {
			return
		}
	}
}
