package rtl_test

import (
	"testing"

	"repro/internal/mc"
	"repro/internal/opt"
	"repro/internal/rtl"
)

// TestParseRoundTrip: print → parse → print is the identity on real
// compiled functions, both before and after register assignment.
func TestParseRoundTrip(t *testing.T) {
	src := `
int a[8] = {1, 2, 3, 4, 5, 6, 7, 8};
int f(int n) {
    int i;
    int s = 0;
    for (i = 0; i < n; i++) {
        if (a[i] > 4) s += a[i] * 3;
        else s -= a[i] / 2;
    }
    return s ^ (n << 2);
}`
	prog, err := mc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("f")
	check := func(g *rtl.Func) {
		t.Helper()
		text := g.String()
		parsed, err := rtl.ParseFunc(text)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, text)
		}
		if got := parsed.String(); got != text {
			t.Fatalf("round trip changed the function:\n--- printed\n%s--- reparsed\n%s", text, got)
		}
		if parsed.NArgs != g.NArgs || parsed.Returns != g.Returns {
			t.Fatalf("metadata lost: %d/%v vs %d/%v",
				parsed.NArgs, parsed.Returns, g.NArgs, g.Returns)
		}
	}
	check(f)
	opt.RegAssign(f)
	check(f)
}

// TestParsePaperFigure parses the notation exactly as the paper prints
// it (Figure 5(b)).
func TestParsePaperFigure(t *testing.T) {
	text := `fig5(0):
L0:
	r[10]=0;
	r[12]=HI[a];
	r[12]=r[12]+LO[a];
	r[1]=r[12];
	r[9]=4000+r[12];
L3:
	r[8]=M[r[1]];
	r[10]=r[10]+r[8];
	r[1]=r[1]+4;
	IC=r[1]?r[9];
	PC=IC<0,L3;
L4:
	RET;
`
	f, err := rtl.ParseFunc(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 3 {
		t.Fatalf("parsed %d blocks, want 3", len(f.Blocks))
	}
	if err := rtl.Validate(f); err != nil {
		t.Fatal(err)
	}
	// r[9]=4000+r[12] must have parsed as an immediate-first add.
	add := f.Blocks[0].Instrs[4]
	if add.Op != rtl.OpAdd || add.A.Kind != rtl.OperImm {
		t.Fatalf("parsed %q as %+v", "r[9]=4000+r[12]", add)
	}
	if !f.RegAssigned {
		t.Fatal("all-hardware function not marked register-assigned")
	}
}

// TestParseErrors rejects malformed input.
func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"noheader\nL0:\n\tRET;\n",
		"f(0):\n\tr[1]=2;\n", // instruction before label
		"f(0):\nL0:\n\tbogus;\n",
		"f(0):\nL0:\nL0:\n\tRET;\n", // duplicate label
		"f(x):\nL0:\n\tRET;\n",      // bad arity
		"f(0):\nL0:\n\tr[1]=r[2]@r[3];\n",
	}
	for _, text := range cases {
		if _, err := rtl.ParseFunc(text); err == nil {
			t.Errorf("accepted %q", text)
		}
	}
}
