package rtl

import (
	"fmt"
	"strings"
)

// Block is a basic block: a straight-line sequence of instructions with
// a single entry at the top. Only the final instruction may transfer
// control. A block that does not end in a jump, return or unconditional
// branch falls through to the next block in the function's positional
// order; a conditional branch falls through when not taken.
//
// The ID is a stable label: branch targets refer to block IDs, so
// blocks can be reordered, merged and deleted without rewriting
// unrelated instructions.
type Block struct {
	ID     int
	Instrs []Instr
}

// Last returns a pointer to the final instruction, or nil for an empty
// block.
func (b *Block) Last() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	return &b.Instrs[len(b.Instrs)-1]
}

// EndsInControl reports whether the block's final instruction transfers
// control.
func (b *Block) EndsInControl() bool {
	last := b.Last()
	return last != nil && last.Op.IsControl()
}

// Insert places instruction in at position i.
func (b *Block) Insert(i int, in Instr) {
	b.Instrs = append(b.Instrs, Instr{})
	copy(b.Instrs[i+1:], b.Instrs[i:])
	b.Instrs[i] = in
}

// Remove deletes the instruction at position i.
func (b *Block) Remove(i int) {
	b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
}

// Clone returns a deep copy of the block.
func (b *Block) Clone() *Block {
	nb := &Block{ID: b.ID, Instrs: make([]Instr, len(b.Instrs))}
	copy(nb.Instrs, b.Instrs)
	return nb
}

// Slot describes one frame-allocated local variable or spill slot.
// Offsets are byte offsets from the stack pointer. A scalar slot whose
// address is never taken is a candidate for the register allocation
// phase, which promotes it to a register.
type Slot struct {
	Name   string
	Offset int32
	Size   int32
	Scalar bool // promotable: word-sized, address never taken
}

// Func is a single function in RTL form. Blocks[0] is the entry block.
// Blocks are kept in positional (layout) order, which determines
// fall-through behaviour.
type Func struct {
	Name    string
	NArgs   int
	Returns bool

	Blocks []*Block

	// Slots lists the stack-frame slots for locals (and, after
	// register assignment, spills). FrameSize is the total frame size
	// in bytes.
	Slots     []Slot
	FrameSize int32

	// NextPseudo is the next unallocated pseudo register number.
	NextPseudo Reg

	// NextBlockID is the next unused block ID.
	NextBlockID int

	// RegAssigned records that the compulsory register assignment pass
	// has run: all pseudo registers have been mapped onto hardware
	// registers.
	RegAssigned bool

	// EntryExitFixed records that the compulsory entry/exit fixup has
	// inserted the callee-save save/restore code. Before that point the
	// callee-save registers are ordinary storage, so the verifier's
	// callee-save preservation rule only applies once this is set.
	EntryExitFixed bool

	// blockStore and instrStore are the backing arrays a clone was
	// built into, retained so CloneReusing can recycle them once the
	// clone's contents are dead. Structural mutations may stop the
	// Blocks/Instrs slices pointing into them; only the capacity
	// matters.
	blockStore []Block
	instrStore []Instr
}

// NewFunc returns an empty function with a single entry block.
func NewFunc(name string, nargs int, returns bool) *Func {
	f := &Func{
		Name:       name,
		NArgs:      nargs,
		Returns:    returns,
		NextPseudo: FirstPseudo,
	}
	f.AddBlock()
	return f
}

// NewReg allocates a fresh pseudo register.
func (f *Func) NewReg() Reg {
	r := f.NextPseudo
	f.NextPseudo++
	return r
}

// AddBlock appends a new empty block and returns it.
func (f *Func) AddBlock() *Block {
	b := &Block{ID: f.NextBlockID}
	f.NextBlockID++
	f.Blocks = append(f.Blocks, b)
	return b
}

// NewDetachedBlock creates a block with a fresh ID without inserting it
// into the layout; callers place it with InsertBlockAfter.
func (f *Func) NewDetachedBlock() *Block {
	b := &Block{ID: f.NextBlockID}
	f.NextBlockID++
	return b
}

// AppendBlock places an existing (detached) block at the end of the
// layout.
func (f *Func) AppendBlock(b *Block) { f.Blocks = append(f.Blocks, b) }

// InsertBlockAfter places block nb immediately after the block at
// layout position i.
func (f *Func) InsertBlockAfter(i int, nb *Block) {
	f.Blocks = append(f.Blocks, nil)
	copy(f.Blocks[i+2:], f.Blocks[i+1:])
	f.Blocks[i+1] = nb
}

// RemoveBlockAt deletes the block at layout position i.
func (f *Func) RemoveBlockAt(i int) {
	f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
}

// AddSlot reserves a new frame slot of the given size and returns its
// offset.
func (f *Func) AddSlot(name string, size int32, scalar bool) int32 {
	off := f.FrameSize
	f.Slots = append(f.Slots, Slot{Name: name, Offset: off, Size: size, Scalar: scalar})
	f.FrameSize += size
	return off
}

// SlotAt returns the slot covering the given offset, or nil.
func (f *Func) SlotAt(offset int32) *Slot {
	for i := range f.Slots {
		s := &f.Slots[i]
		if offset >= s.Offset && offset < s.Offset+s.Size {
			return s
		}
	}
	return nil
}

// BlockIndex returns the layout position of the block with the given
// ID, or -1 when no such block exists.
func (f *Func) BlockIndex(id int) int {
	for i, b := range f.Blocks {
		if b.ID == id {
			return i
		}
	}
	return -1
}

// BlockByID returns the block with the given ID, or nil.
func (f *Func) BlockByID(id int) *Block {
	if i := f.BlockIndex(id); i >= 0 {
		return f.Blocks[i]
	}
	return nil
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// NumInstrs returns the static instruction count, the paper's code-size
// metric.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// NumBranches counts conditional and unconditional transfers of
// control, matching the paper's "Brch" statistic.
func (f *Func) NumBranches() int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if op := b.Instrs[i].Op; op == OpBranch || op == OpJmp {
				n++
			}
		}
	}
	return n
}

// Clone returns a deep copy of the function. The enumeration engine
// clones aggressively, so this is kept allocation-lean.
func (f *Func) Clone() *Func { return f.CloneReusing(nil) }

// CloneReusing is Clone recycling the storage of scratch — an earlier
// clone whose contents are dead. The enumeration discards most of the
// clones it makes (dormant attempts, duplicate instances, explored
// frontier nodes) and pools them; reusing their arrays keeps the
// per-attempt clone almost allocation-free. A nil scratch, or one
// whose arrays are too small, falls back to fresh allocations.
// scratch must not share storage with f.
func (f *Func) CloneReusing(scratch *Func) *Func {
	n := len(f.Blocks)
	total := 0
	for _, b := range f.Blocks {
		total += len(b.Instrs)
	}
	nf := scratch
	if nf == nil {
		nf = &Func{}
	}
	blocks, instrs, blkPtrs, slots := nf.blockStore, nf.instrStore, nf.Blocks, nf.Slots
	if cap(blocks) < n {
		blocks = make([]Block, n)
	}
	if cap(instrs) < total {
		instrs = make([]Instr, total)
	}
	if cap(blkPtrs) < n {
		blkPtrs = make([]*Block, n)
	}
	if cap(slots) < len(f.Slots) {
		slots = make([]Slot, len(f.Slots))
	}
	blocks, instrs, blkPtrs, slots = blocks[:n], instrs[:total], blkPtrs[:n], slots[:len(f.Slots)]
	*nf = Func{
		Name:           f.Name,
		NArgs:          f.NArgs,
		Returns:        f.Returns,
		Blocks:         blkPtrs,
		Slots:          slots,
		FrameSize:      f.FrameSize,
		NextPseudo:     f.NextPseudo,
		NextBlockID:    f.NextBlockID,
		RegAssigned:    f.RegAssigned,
		EntryExitFixed: f.EntryExitFixed,
		blockStore:     blocks,
		instrStore:     instrs,
	}
	at := 0
	for i, b := range f.Blocks {
		k := len(b.Instrs)
		dst := instrs[at : at+k : at+k]
		copy(dst, b.Instrs)
		blocks[i] = Block{ID: b.ID, Instrs: dst}
		blkPtrs[i] = &blocks[i]
		at += k
	}
	copy(slots, f.Slots)
	return nf
}

// String renders the function in the paper's textual RTL notation.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s(%d):\n", f.Name, f.NArgs)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "L%d:\n", b.ID)
		for i := range b.Instrs {
			fmt.Fprintf(&sb, "\t%s\n", b.Instrs[i].String())
		}
	}
	return sb.String()
}

// UsedRegs returns the set of registers referenced anywhere in the
// function.
func (f *Func) UsedRegs() map[Reg]bool {
	used := make(map[Reg]bool)
	var buf [8]Reg
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			for _, r := range in.Defs(buf[:0]) {
				used[r] = true
			}
			for _, r := range in.Uses(buf[:0]) {
				used[r] = true
			}
		}
	}
	return used
}

// Global is a program-level data object: a word array with optional
// initial values (zero-filled beyond Init).
type Global struct {
	Name  string
	Words int32
	Init  []int32
}

// Program is a set of functions plus global data, the unit the mini-C
// frontend produces and the interpreter executes.
type Program struct {
	Globals []Global
	Funcs   []*Func
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global with the given name, or nil.
func (p *Program) Global(name string) *Global {
	for i := range p.Globals {
		if p.Globals[i].Name == name {
			return &p.Globals[i]
		}
	}
	return nil
}

// Clone deep-copies the program.
func (p *Program) Clone() *Program {
	np := &Program{
		Globals: make([]Global, len(p.Globals)),
		Funcs:   make([]*Func, len(p.Funcs)),
	}
	for i, g := range p.Globals {
		ng := g
		ng.Init = append([]int32(nil), g.Init...)
		np.Globals[i] = ng
	}
	for i, f := range p.Funcs {
		np.Funcs[i] = f.Clone()
	}
	return np
}
