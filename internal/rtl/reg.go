// Package rtl defines the register transfer list (RTL) intermediate
// representation used throughout this repository. It mirrors the
// representation of the VPO compiler backend described in the paper
// "Exhaustive Optimization Phase Order Space Exploration" (CGO 2006):
// a function is a list of basic blocks, each holding a sequence of RTL
// instructions over an ARM-like register file, with condition codes set
// by comparison instructions (IC=a?b) and consumed by conditional
// branches (PC=IC<0,L).
//
// All optimization phases operate on this single representation, which
// is what allows them to be applied repeatedly and in arbitrary order.
package rtl

import "fmt"

// Reg names a machine or pseudo register. Hardware registers occupy
// 0..15 following the ARM convention; the condition-code register IC is
// modeled as register 16 so that liveness analysis can treat it
// uniformly; pseudo registers (unlimited, present before the compulsory
// register assignment pass) start at FirstPseudo.
type Reg uint16

// Hardware register conventions (ARM-like, StrongARM SA-1xx):
// r0-r3 hold arguments and the return value and are caller-save,
// r4-r11 are callee-save, r12 is a scratch register, r13 is the stack
// pointer, r14 the link register and r15 the program counter.
const (
	RegR0 Reg = iota
	RegR1
	RegR2
	RegR3
	RegR4
	RegR5
	RegR6
	RegR7
	RegR8
	RegR9
	RegR10
	RegR11
	RegR12
	RegSP // r13
	RegLR // r14
	RegPC // r15

	// RegIC is the condition-code (flags) register. It is written by
	// Cmp instructions and read by conditional branches. Giving it a
	// register number lets the dataflow analyses treat condition codes
	// like any other value.
	RegIC Reg = 16

	// RegNone marks the absence of a register operand.
	RegNone Reg = 0xFFFF

	// FirstPseudo is the first pseudo-register number. The code
	// generator and optimization phases allocate pseudo registers
	// freely; the compulsory register assignment pass later maps them
	// onto hardware registers.
	FirstPseudo Reg = 32
)

// NumHardRegs is the number of addressable hardware registers (r0-r15).
const NumHardRegs = 16

// AllocatableHardRegs lists the hardware registers available to the
// register assignment pass, in preference order: caller-save scratch
// registers first (no save/restore cost), then callee-save.
var AllocatableHardRegs = []Reg{
	RegR0, RegR1, RegR2, RegR3, RegR12,
	RegR4, RegR5, RegR6, RegR7, RegR8, RegR9, RegR10, RegR11,
}

// CallerSave lists registers clobbered by a call.
var CallerSave = []Reg{RegR0, RegR1, RegR2, RegR3, RegR12, RegLR, RegIC}

// IsPseudo reports whether r is a pseudo register.
func (r Reg) IsPseudo() bool { return r >= FirstPseudo && r != RegNone }

// IsHard reports whether r is a hardware register (including SP/LR/PC).
func (r Reg) IsHard() bool { return r < RegIC }

// IsCalleeSave reports whether a hardware register must be preserved
// across calls by the callee.
func (r Reg) IsCalleeSave() bool { return r >= RegR4 && r <= RegR11 }

// String renders the register in the paper's textual RTL notation.
func (r Reg) String() string {
	switch r {
	case RegNone:
		return "r[?]"
	case RegIC:
		return "IC"
	case RegSP:
		return "r[sp]"
	case RegLR:
		return "r[lr]"
	case RegPC:
		return "PC"
	}
	return fmt.Sprintf("r[%d]", uint16(r))
}
