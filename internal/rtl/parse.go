package rtl

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseFunc parses the textual RTL notation produced by Func.String,
// closing the print/parse round trip. The expected form is
//
//	name(nargs):
//	L0:
//	        r[3]=r[4]+1;
//	        IC=r[1]?r[9];
//	        PC=IC<0,L3;
//	...
//
// Lines are trimmed, so indentation is free-form; blank lines are
// skipped. The parser exists for tests, fixtures and tooling — the
// compiler pipeline itself never parses RTL.
func ParseFunc(text string) (*Func, error) {
	lines := strings.Split(text, "\n")
	if len(lines) == 0 {
		return nil, fmt.Errorf("rtl: empty input")
	}
	var f *Func
	var cur *Block
	labelIDs := map[int]bool{}
	lineNo := 0
	for _, raw := range lines {
		lineNo++
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		if f == nil {
			// Header: name(nargs):
			open := strings.IndexByte(line, '(')
			close := strings.IndexByte(line, ')')
			if open < 1 || close < open || !strings.HasSuffix(line, ":") {
				return nil, fmt.Errorf("rtl: line %d: expected \"name(nargs):\", got %q", lineNo, line)
			}
			nargs, err := strconv.Atoi(line[open+1 : close])
			if err != nil {
				return nil, fmt.Errorf("rtl: line %d: bad argument count: %v", lineNo, err)
			}
			f = &Func{Name: line[:open], NArgs: nargs, NextPseudo: FirstPseudo}
			continue
		}
		if strings.HasPrefix(line, "L") && strings.HasSuffix(line, ":") {
			id, err := strconv.Atoi(line[1 : len(line)-1])
			if err != nil {
				return nil, fmt.Errorf("rtl: line %d: bad label %q", lineNo, line)
			}
			if labelIDs[id] {
				return nil, fmt.Errorf("rtl: line %d: duplicate label L%d", lineNo, id)
			}
			labelIDs[id] = true
			cur = &Block{ID: id}
			f.Blocks = append(f.Blocks, cur)
			if id >= f.NextBlockID {
				f.NextBlockID = id + 1
			}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("rtl: line %d: instruction before any label", lineNo)
		}
		in, err := parseInstr(line)
		if err != nil {
			return nil, fmt.Errorf("rtl: line %d: %v", lineNo, err)
		}
		trackRegs(f, &in)
		cur.Instrs = append(cur.Instrs, in)
	}
	if f == nil || len(f.Blocks) == 0 {
		return nil, fmt.Errorf("rtl: no function body")
	}
	// Mark the function register-assigned when no pseudo registers
	// appear.
	f.RegAssigned = true
	for r := range f.UsedRegs() {
		if r.IsPseudo() {
			f.RegAssigned = false
		}
	}
	if f.Returns {
		// set by RET r[0] forms during parsing via trackRegs
	}
	return f, nil
}

// trackRegs keeps NextPseudo above every referenced pseudo register.
func trackRegs(f *Func, in *Instr) {
	var buf [8]Reg
	for _, r := range in.Defs(buf[:0]) {
		if r.IsPseudo() && r >= f.NextPseudo {
			f.NextPseudo = r + 1
		}
	}
	for _, r := range in.Uses(buf[:0]) {
		if r.IsPseudo() && r >= f.NextPseudo {
			f.NextPseudo = r + 1
		}
	}
	if in.Op == OpRet && in.A.Kind == OperReg {
		f.Returns = true
	}
}

var relByName = map[string]Rel{
	"==": RelEQ, "!=": RelNE, "<": RelLT, "<=": RelLE, ">": RelGT,
	">=": RelGE, "<u": RelULT, "<=u": RelULE, ">u": RelUGT, ">=u": RelUGE,
}

var opBySymbol = map[string]Op{
	"+": OpAdd, "-": OpSub, "*": OpMul, "/": OpDiv, "%": OpRem,
	"&": OpAnd, "|": OpOr, "^": OpXor, "<<": OpShl, ">>u": OpShr, ">>": OpSar,
}

// parseInstr parses one semicolon-terminated instruction.
func parseInstr(line string) (Instr, error) {
	var in Instr
	s := strings.TrimSuffix(strings.TrimSpace(line), ";")
	switch {
	case s == "nop":
		in.Op = OpNop
		return in, nil
	case s == "RET":
		in.Op = OpRet
		return in, nil
	case strings.HasPrefix(s, "RET "):
		r, err := parseReg(strings.TrimSpace(s[4:]))
		if err != nil {
			return in, err
		}
		in.Op = OpRet
		in.A = R(r)
		return in, nil
	case strings.HasPrefix(s, "CALL "):
		rest := strings.TrimSpace(s[5:])
		open := strings.IndexByte(rest, '(')
		close := strings.IndexByte(rest, ')')
		if open < 1 || close < open {
			return in, fmt.Errorf("bad call %q", s)
		}
		n, err := strconv.Atoi(rest[open+1 : close])
		if err != nil || n < 0 || n > 4 {
			return in, fmt.Errorf("bad call arity in %q", s)
		}
		in.Op = OpCall
		in.Sym = rest[:open]
		in.NArgs = uint8(n)
		return in, nil
	case strings.HasPrefix(s, "PC=IC"):
		rest := s[5:]
		comma := strings.IndexByte(rest, ',')
		if comma < 0 {
			return in, fmt.Errorf("bad branch %q", s)
		}
		relStr := strings.TrimSuffix(rest[:comma], "0")
		rel, ok := relByName[relStr]
		if !ok {
			return in, fmt.Errorf("bad relation %q in %q", relStr, s)
		}
		t, err := parseLabel(rest[comma+1:])
		if err != nil {
			return in, err
		}
		in.Op = OpBranch
		in.Rel = rel
		in.Target = t
		return in, nil
	case strings.HasPrefix(s, "PC=L"):
		t, err := parseLabel(s[3:])
		if err != nil {
			return in, err
		}
		in.Op = OpJmp
		in.Target = t
		return in, nil
	case strings.HasPrefix(s, "IC="):
		rest := s[3:]
		q := strings.IndexByte(rest, '?')
		if q < 0 {
			return in, fmt.Errorf("bad compare %q", s)
		}
		a, err := parseOperand(rest[:q])
		if err != nil {
			return in, err
		}
		b, err := parseOperand(rest[q+1:])
		if err != nil {
			return in, err
		}
		in = NewCmp(a, b)
		return in, nil
	case strings.HasPrefix(s, "M["):
		// Store: M[base(+disp)]=src
		eq := strings.Index(s, "]=")
		if eq < 0 {
			return in, fmt.Errorf("bad store %q", s)
		}
		base, disp, err := parseAddr(s[2:eq])
		if err != nil {
			return in, err
		}
		val, err := parseReg(s[eq+2:])
		if err != nil {
			return in, err
		}
		return NewStore(val, base, disp), nil
	}

	// Everything else: dst=rhs.
	eq := strings.IndexByte(s, '=')
	if eq < 0 {
		return in, fmt.Errorf("unrecognized instruction %q", s)
	}
	dst, err := parseReg(s[:eq])
	if err != nil {
		return in, err
	}
	rhs := s[eq+1:]
	switch {
	case strings.HasPrefix(rhs, "M["):
		if !strings.HasSuffix(rhs, "]") {
			return in, fmt.Errorf("bad load %q", s)
		}
		base, disp, err := parseAddr(rhs[2 : len(rhs)-1])
		if err != nil {
			return in, err
		}
		return NewLoad(dst, base, disp), nil
	case strings.HasPrefix(rhs, "HI["):
		sym := strings.TrimSuffix(strings.TrimPrefix(rhs, "HI["), "]")
		return Instr{Op: OpMovHi, Dst: dst, Sym: sym}, nil
	case strings.HasPrefix(rhs, "-"):
		if r, err := parseReg(rhs[1:]); err == nil {
			return Instr{Op: OpNeg, Dst: dst, A: R(r)}, nil
		}
	case strings.HasPrefix(rhs, "~"):
		r, err := parseReg(rhs[1:])
		if err != nil {
			return in, err
		}
		return Instr{Op: OpNot, Dst: dst, A: R(r)}, nil
	}
	// AddLo: r[x]+LO[sym]
	if lo := strings.Index(rhs, "+LO["); lo > 0 && strings.HasSuffix(rhs, "]") {
		a, err := parseReg(rhs[:lo])
		if err != nil {
			return in, err
		}
		return Instr{Op: OpAddLo, Dst: dst, A: R(a), Sym: rhs[lo+4 : len(rhs)-1]}, nil
	}
	// Binary ALU: operand op operand. Find the operator after the
	// first operand.
	if a, rest, ok := splitOperand(rhs); ok && rest != "" {
		for _, sym := range []string{"<<", ">>u", ">>", "+", "-", "*", "/", "%", "&", "|", "^"} {
			if strings.HasPrefix(rest, sym) {
				b, err := parseOperand(rest[len(sym):])
				if err != nil {
					return in, err
				}
				op := opBySymbol[sym]
				if op == OpSub && a.Kind == OperImm && b.Kind == OperReg {
					// "c-r" is the printed form of reverse subtract.
					return NewALU(OpRsb, dst, b, a), nil
				}
				return NewALU(op, dst, a, b), nil
			}
		}
		return in, fmt.Errorf("bad operator in %q", s)
	}
	// Plain move.
	src, err := parseOperand(rhs)
	if err != nil {
		return in, err
	}
	return NewMov(dst, src), nil
}

// splitOperand splits the leading operand off an expression.
func splitOperand(s string) (Operand, string, bool) {
	if strings.HasPrefix(s, "r[") || strings.HasPrefix(s, "PC") || strings.HasPrefix(s, "IC") {
		end := strings.IndexByte(s, ']')
		if strings.HasPrefix(s, "IC") {
			return R(RegIC), s[2:], true
		}
		if end < 0 {
			return Operand{}, "", false
		}
		r, err := parseReg(s[:end+1])
		if err != nil {
			return Operand{}, "", false
		}
		return R(r), s[end+1:], true
	}
	// Immediate: digits (optionally negative).
	i := 0
	if i < len(s) && s[i] == '-' {
		i++
	}
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i == 0 || (i == 1 && s[0] == '-') {
		return Operand{}, "", false
	}
	v, err := strconv.ParseInt(s[:i], 10, 32)
	if err != nil {
		return Operand{}, "", false
	}
	return Imm(int32(v)), s[i:], true
}

func parseOperand(s string) (Operand, error) {
	s = strings.TrimSpace(s)
	o, rest, ok := splitOperand(s)
	if !ok || rest != "" {
		return Operand{}, fmt.Errorf("bad operand %q", s)
	}
	return o, nil
}

func parseReg(s string) (Reg, error) {
	s = strings.TrimSpace(s)
	switch s {
	case "r[sp]":
		return RegSP, nil
	case "r[lr]":
		return RegLR, nil
	case "PC":
		return RegPC, nil
	case "IC":
		return RegIC, nil
	}
	if !strings.HasPrefix(s, "r[") || !strings.HasSuffix(s, "]") {
		return RegNone, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[2 : len(s)-1])
	if err != nil || n < 0 || n > 0xFFFE {
		return RegNone, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

// parseAddr parses "r[b]" or "r[b]+disp" (disp may be negative).
func parseAddr(s string) (Reg, int32, error) {
	s = strings.TrimSpace(s)
	end := strings.IndexByte(s, ']')
	if end < 0 {
		return RegNone, 0, fmt.Errorf("bad address %q", s)
	}
	base, err := parseReg(s[:end+1])
	if err != nil {
		return RegNone, 0, err
	}
	rest := s[end+1:]
	if rest == "" {
		return base, 0, nil
	}
	if !strings.HasPrefix(rest, "+") && !strings.HasPrefix(rest, "-") {
		return RegNone, 0, fmt.Errorf("bad displacement in %q", s)
	}
	v, err := strconv.ParseInt(rest, 10, 32)
	if err != nil {
		return RegNone, 0, fmt.Errorf("bad displacement in %q", s)
	}
	return base, int32(v), nil
}

// parseLabel parses "L<n>".
func parseLabel(s string) (int, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "L") {
		return 0, fmt.Errorf("bad label %q", s)
	}
	return strconv.Atoi(s[1:])
}
