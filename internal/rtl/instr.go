package rtl

import "fmt"

// OperandKind discriminates the variants of an instruction operand.
type OperandKind uint8

const (
	// OperNone marks an absent operand.
	OperNone OperandKind = iota
	// OperReg is a register operand.
	OperReg
	// OperImm is an immediate (constant) operand.
	OperImm
)

// Operand is a source operand: nothing, a register, or an immediate.
// Destination operands are always registers and live directly in Instr.
type Operand struct {
	Kind OperandKind
	Reg  Reg
	Imm  int32
}

// R constructs a register operand.
func R(r Reg) Operand { return Operand{Kind: OperReg, Reg: r} }

// Imm constructs an immediate operand.
func Imm(v int32) Operand { return Operand{Kind: OperImm, Imm: v} }

// IsReg reports whether the operand is the given register.
func (o Operand) IsReg(r Reg) bool { return o.Kind == OperReg && o.Reg == r }

// IsImm reports whether the operand is an immediate with value v.
func (o Operand) IsImm(v int32) bool { return o.Kind == OperImm && o.Imm == v }

// String renders the operand in paper notation.
func (o Operand) String() string {
	switch o.Kind {
	case OperReg:
		return o.Reg.String()
	case OperImm:
		return fmt.Sprintf("%d", o.Imm)
	}
	return "_"
}

// Instr is a single RTL instruction. The operand roles depend on Op:
//
//	Mov    Dst = A              (A is a register or immediate)
//	MovHi  Dst = HI[Sym]
//	AddLo  Dst = A + LO[Sym]
//	ALU    Dst = A op B
//	Neg    Dst = -A,  Not: Dst = ~A
//	Load   Dst = M[A + Disp]
//	Store  M[B + Disp] = A      (A carries the stored value)
//	Cmp    IC = A ? B
//	Branch PC = IC Rel 0, Target
//	Jmp    PC = Target
//	Call   call Sym, NArgs arguments in r0..r3
//	Ret    return (A = r0 when the function yields a value)
//
// Target is a block ID within the owning function.
type Instr struct {
	Op     Op
	Dst    Reg
	A, B   Operand
	Disp   int32
	Sym    string
	Rel    Rel
	Target int
	NArgs  uint8
}

// NewMov returns Dst = src.
func NewMov(dst Reg, src Operand) Instr { return Instr{Op: OpMov, Dst: dst, A: src} }

// NewALU returns Dst = a op b.
func NewALU(op Op, dst Reg, a, b Operand) Instr { return Instr{Op: op, Dst: dst, A: a, B: b} }

// NewLoad returns Dst = M[base + disp].
func NewLoad(dst, base Reg, disp int32) Instr {
	return Instr{Op: OpLoad, Dst: dst, A: R(base), Disp: disp}
}

// NewStore returns M[base + disp] = val.
func NewStore(val, base Reg, disp int32) Instr {
	return Instr{Op: OpStore, A: R(val), B: R(base), Disp: disp}
}

// NewCmp returns IC = a ? b.
func NewCmp(a, b Operand) Instr { return Instr{Op: OpCmp, Dst: RegIC, A: a, B: b} }

// NewBranch returns PC = IC rel 0, target.
func NewBranch(rel Rel, target int) Instr { return Instr{Op: OpBranch, Rel: rel, Target: target} }

// NewJmp returns PC = target.
func NewJmp(target int) Instr { return Instr{Op: OpJmp, Target: target} }

// Defs appends the registers written by the instruction to buf and
// returns the extended slice. Passing a reusable buffer keeps the hot
// dataflow loops allocation-free.
func (in *Instr) Defs(buf []Reg) []Reg {
	switch in.Op {
	case OpStore, OpBranch, OpJmp, OpRet, OpNop:
		return buf
	case OpCall:
		// Calls clobber the caller-save registers.
		return append(buf, CallerSave...)
	}
	if in.Dst != RegNone {
		buf = append(buf, in.Dst)
	}
	return buf
}

// Uses appends the registers read by the instruction to buf and
// returns the extended slice.
func (in *Instr) Uses(buf []Reg) []Reg {
	addOp := func(o Operand) {
		if o.Kind == OperReg {
			buf = append(buf, o.Reg)
		}
	}
	switch in.Op {
	case OpBranch:
		buf = append(buf, RegIC)
	case OpCall:
		for i := uint8(0); i < in.NArgs && i < 4; i++ {
			buf = append(buf, Reg(i))
		}
	default:
		addOp(in.A)
		addOp(in.B)
	}
	return buf
}

// HasSideEffects reports whether the instruction does something beyond
// writing its destination register, so that dead assignment elimination
// must not remove it even when the destination is dead.
func (in *Instr) HasSideEffects() bool {
	switch in.Op {
	case OpStore, OpCall, OpBranch, OpJmp, OpRet:
		return true
	}
	return false
}

// ReadsMemory reports whether the instruction loads from memory.
func (in *Instr) ReadsMemory() bool { return in.Op == OpLoad }

// WritesMemory reports whether the instruction stores to memory.
func (in *Instr) WritesMemory() bool { return in.Op == OpStore }

// UsesReg reports whether the instruction reads register r.
func (in *Instr) UsesReg(r Reg) bool {
	var buf [8]Reg
	for _, u := range in.Uses(buf[:0]) {
		if u == r {
			return true
		}
	}
	return false
}

// DefsReg reports whether the instruction writes register r.
func (in *Instr) DefsReg(r Reg) bool {
	var buf [8]Reg
	for _, d := range in.Defs(buf[:0]) {
		if d == r {
			return true
		}
	}
	return false
}

// ReplaceUses rewrites every read of register old to the operand repl.
// Register operands embedded in addressing positions (load/store bases)
// are only replaced when repl is itself a register. It reports whether
// anything changed.
func (in *Instr) ReplaceUses(old Reg, repl Operand) bool {
	changed := false
	replaceOp := func(o *Operand, allowImm bool) {
		if o.Kind == OperReg && o.Reg == old {
			if repl.Kind == OperReg || allowImm {
				*o = repl
				changed = true
			}
		}
	}
	switch in.Op {
	case OpBranch, OpJmp, OpCall, OpNop, OpRet:
		// A return's use of r0 is fixed by the calling convention and
		// is not a substitutable operand.
		return false
	case OpLoad:
		replaceOp(&in.A, false) // base must stay a register
	case OpStore:
		replaceOp(&in.A, false) // stored value must stay a register
		replaceOp(&in.B, false) // base must stay a register
	case OpAddLo, OpNeg, OpNot:
		replaceOp(&in.A, false)
	case OpMov:
		replaceOp(&in.A, true)
	case OpCmp:
		replaceOp(&in.A, false) // first comparand stays a register
		replaceOp(&in.B, true)
	default: // ALU
		replaceOp(&in.A, false) // machine form keeps A in a register
		replaceOp(&in.B, true)
	}
	return changed
}

// RenameReg rewrites every occurrence of register old (both defs and
// uses) to new. It reports whether anything changed.
func (in *Instr) RenameReg(old, new Reg) bool {
	changed := false
	if in.Dst == old {
		in.Dst = new
		changed = true
	}
	if in.A.Kind == OperReg && in.A.Reg == old {
		in.A.Reg = new
		changed = true
	}
	if in.B.Kind == OperReg && in.B.Reg == old {
		in.B.Reg = new
		changed = true
	}
	return changed
}

// Equal reports full structural equality of two instructions.
func (in Instr) Equal(other Instr) bool { return in == other }

// String renders the instruction in the paper's RTL notation, e.g.
// "r[3]=r[4]+1;" or "PC=IC<0,L3;". Branch and jump targets print as
// L<block-id>.
func (in *Instr) String() string {
	switch in.Op {
	case OpNop:
		return "nop;"
	case OpMov:
		return fmt.Sprintf("%s=%s;", in.Dst, in.A)
	case OpMovHi:
		return fmt.Sprintf("%s=HI[%s];", in.Dst, in.Sym)
	case OpAddLo:
		return fmt.Sprintf("%s=%s+LO[%s];", in.Dst, in.A, in.Sym)
	case OpNeg:
		return fmt.Sprintf("%s=-%s;", in.Dst, in.A)
	case OpNot:
		return fmt.Sprintf("%s=~%s;", in.Dst, in.A)
	case OpLoad:
		if in.Disp == 0 {
			return fmt.Sprintf("%s=M[%s];", in.Dst, in.A)
		}
		return fmt.Sprintf("%s=M[%s+%d];", in.Dst, in.A, in.Disp)
	case OpStore:
		if in.Disp == 0 {
			return fmt.Sprintf("M[%s]=%s;", in.B, in.A)
		}
		return fmt.Sprintf("M[%s+%d]=%s;", in.B, in.Disp, in.A)
	case OpCmp:
		return fmt.Sprintf("IC=%s?%s;", in.A, in.B)
	case OpBranch:
		return fmt.Sprintf("PC=IC%s0,L%d;", in.Rel, in.Target)
	case OpJmp:
		return fmt.Sprintf("PC=L%d;", in.Target)
	case OpCall:
		return fmt.Sprintf("CALL %s(%d);", in.Sym, in.NArgs)
	case OpRet:
		if in.A.Kind == OperReg {
			return fmt.Sprintf("RET %s;", in.A)
		}
		return "RET;"
	}
	if in.Op == OpRsb {
		// Reverse subtract computes B - A; print it that way.
		return fmt.Sprintf("%s=%s-%s;", in.Dst, in.B, in.A)
	}
	if in.Op.IsALU() {
		return fmt.Sprintf("%s=%s%s%s;", in.Dst, in.A, opSymbols[in.Op], in.B)
	}
	return fmt.Sprintf("%s?;", in.Op)
}
