# Tier-1 verification: everything CI runs, runnable locally with
# "make check".

GO ?= go

.PHONY: check fmt vet build test race lint lint-fixtures bench-smoke bench-search bench-parallel resume-smoke serve-smoke obs-smoke cluster-smoke chaos shard-smoke

check: fmt vet build test race lint lint-fixtures

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The enumerator and the compilers are the concurrent subsystems; run
# their suites under the race detector. faultinject rides along: its
# faults fire on the enumerator's worker goroutines, so the panic /
# hang / corrupt paths must be race-clean too, fingerprint because
# workers summarize instances concurrently through its pooled buffers,
# dataflow because the equivalence tier canonicalizes instances on
# those same workers (the -jobs + -equiv combination in the search
# suite exercises it end to end), and distcl because the fleet worker
# runs assignments, heartbeats and drains on separate goroutines.
# -timeout 30m: the search suite's determinism grids run ~10m under
# -race on a 1-CPU box, brushing the 10m per-package default.
race:
	$(GO) test -race -timeout 30m ./internal/search/ ./internal/driver/ ./internal/telemetry/ ./internal/faultinject/ ./internal/fingerprint/ ./internal/server/ ./internal/dataflow/ ./internal/distcl/

# Static analysis beyond go vet. staticcheck and govulncheck run when
# installed and are skipped with a note otherwise, so the target stays
# green on a bare Go toolchain and tightens automatically where the
# tools exist.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# The rtllint fixtures double as an executable smoke test: the clean
# inputs must lint clean, the broken ones must fail.
lint-fixtures:
	$(GO) run ./cmd/rtllint cmd/rtllint/testdata/clean.rtl
	$(GO) run ./cmd/rtllint -batch cmd/rtllint/testdata/gcd.c
	@if $(GO) run ./cmd/rtllint cmd/rtllint/testdata/use_before_def.rtl >/dev/null; then \
		echo "use_before_def.rtl unexpectedly linted clean"; exit 1; fi
	@if $(GO) run ./cmd/rtllint cmd/rtllint/testdata/clobbered_ic.rtl >/dev/null; then \
		echo "clobbered_ic.rtl unexpectedly linted clean"; exit 1; fi

# Telemetry smoke test: instrument a tiny enumeration, then make
# phasestats re-read the snapshot and assert the core counters are
# nonzero. Catches metric-name drift and snapshot format breakage.
bench-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/explore -bench stringsearch -func tolower_c -check \
		-metrics "$$tmp/smoke.metrics.json" -trace "$$tmp/smoke.trace.json" && \
	$(GO) run ./cmd/phasestats -from-metrics "$$tmp/smoke.metrics.json" \
		-require search.nodes,search.attempts,check.verify.calls

# Enumeration-throughput smoke: one iteration of the end-to-end search
# benchmark plus the dedup-index microbenchmark. Catches perf-path
# compile breakage and gross regressions cheaply; the real before/after
# numbers live in BENCH_search.json (EXPERIMENTS.md has the table).
bench-search:
	$(GO) test -run '^$$' -bench 'BenchmarkSearchRun/(bmh_search|get_code)' -benchmem -benchtime 1x .
	$(GO) test -run '^$$' -bench BenchmarkDedupIndex -benchmem -benchtime 100x ./internal/search/

# Parallel-engine scaling sweep: BenchmarkSearchRun/bmh_search medians
# at GOMAXPROCS 1/2/4/8/16, striped-index contention counters, and the
# byte-identical-across-widths gate (spacedot -hash parity at
# -search-workers 1/4/16). Writes BENCH_parallel.json; COUNT=1 makes it
# a quick smoke. Needs jq. scripts/bench_parallel.sh has the details.
bench-parallel:
	sh scripts/bench_parallel.sh

# Crash/resume smoke test: SIGKILL an enumeration mid-run, resume it
# from its checkpoint file, and require the resumed space to hash
# identical (spacedot -hash, canonical serialization) to an
# uninterrupted run of the same function. If the machine is fast enough
# that the run finishes before the kill lands, the checkpoint file
# already holds the complete space and the comparison still applies.
resume-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/explore" ./cmd/explore && \
	$(GO) build -o "$$tmp/spacedot" ./cmd/spacedot && \
	"$$tmp/explore" -bench sha -func sha_transform -save "$$tmp" >/dev/null && \
	{ "$$tmp/explore" -bench sha -func sha_transform -checkpoint "$$tmp" >/dev/null 2>&1 & \
	pid=$$!; sleep 1.2; kill -9 $$pid 2>/dev/null || true; wait $$pid 2>/dev/null; } ; \
	"$$tmp/explore" -bench sha -func sha_transform -checkpoint "$$tmp" -resume >/dev/null && \
	a=$$("$$tmp/spacedot" -hash "$$tmp/sha.sha_transform.ckpt.space.gz" | cut -d' ' -f1) && \
	b=$$("$$tmp/spacedot" -hash "$$tmp/sha.sha_transform.space.gz" | cut -d' ' -f1) && \
	if [ "$$a" != "$$b" ]; then \
		echo "resume-smoke: resumed space differs from clean run: $$a vs $$b"; exit 1; \
	fi; \
	echo "resume-smoke: killed+resumed space identical to clean run ($$a)"

# Serving smoke test: start spaced, fire two concurrent identical
# requests plus one distinct one, and require (a) exactly one
# enumeration per distinct key (/v1/stats counters — coalescing or
# cache, either way the work ran once), (b) a warm repeat served from
# cache, (c) the served space hashing identical (spacedot -hash) to
# what cmd/explore writes for the same function, and (d) a clean
# SIGTERM drain. Needs curl and jq.
serve-smoke:
	@set -e; tmp=$$(mktemp -d); srv=""; \
	trap 'kill $$srv 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/explore" ./cmd/explore; \
	$(GO) build -o "$$tmp/spacedot" ./cmd/spacedot; \
	$(GO) build -o "$$tmp/spaced" ./cmd/spaced; \
	"$$tmp/explore" -bench sha -func rotl -save "$$tmp" >/dev/null; \
	want=$$("$$tmp/spacedot" -hash "$$tmp/sha.rotl.space.gz" | cut -d' ' -f1); \
	"$$tmp/spaced" -addr 127.0.0.1:0 -cache "$$tmp/cache" -ready-file "$$tmp/addr" \
		2>"$$tmp/spaced.log" & srv=$$!; \
	for i in $$(seq 1 100); do [ -s "$$tmp/addr" ] && break; sleep 0.1; done; \
	[ -s "$$tmp/addr" ] || { echo "serve-smoke: spaced never became ready"; cat "$$tmp/spaced.log"; exit 1; }; \
	addr=$$(head -n1 "$$tmp/addr"); \
	curl -fsS "http://$$addr/healthz" >/dev/null; \
	curl -fsS -d '{"bench":"sha","func":"rotl"}' "http://$$addr/v1/enumerate" -o "$$tmp/r1.json" & c1=$$!; \
	curl -fsS -d '{"bench":"sha","func":"rotl"}' "http://$$addr/v1/enumerate" -o "$$tmp/r2.json" & c2=$$!; \
	wait $$c1; wait $$c2; \
	curl -fsS -d '{"bench":"stringsearch","func":"tolower_c"}' "http://$$addr/v1/enumerate" -o "$$tmp/r3.json"; \
	curl -fsS -d '{"bench":"sha","func":"rotl"}' "http://$$addr/v1/enumerate" -o "$$tmp/r4.json"; \
	for r in r1 r2; do \
		h=$$(jq -r .space_hash "$$tmp/$$r.json"); \
		[ "$$h" = "$$want" ] || { echo "serve-smoke: $$r served hash $$h, explore wrote $$want"; exit 1; }; \
	done; \
	warm=$$(jq -r .cache "$$tmp/r4.json"); \
	case "$$warm" in mem|disk) ;; *) echo "serve-smoke: warm repeat served as '$$warm', want a cache hit"; exit 1;; esac; \
	enums=$$(curl -fsS "http://$$addr/v1/stats" | jq '.counters["server.enumerations"]'); \
	[ "$$enums" = 2 ] || { echo "serve-smoke: $$enums enumerations for 2 distinct keys, want exactly 2"; exit 1; }; \
	key=$$(jq -r .key "$$tmp/r1.json"); \
	curl -fsS "http://$$addr/v1/space/$$key" -o "$$tmp/served.space.gz"; \
	got=$$("$$tmp/spacedot" -hash "$$tmp/served.space.gz" | cut -d' ' -f1); \
	[ "$$got" = "$$want" ] || { echo "serve-smoke: served space hashes $$got, explore wrote $$want"; exit 1; }; \
	kill -TERM $$srv; \
	wait $$srv || { echo "serve-smoke: spaced did not drain cleanly"; cat "$$tmp/spaced.log"; exit 1; }; \
	srv=""; \
	echo "serve-smoke: coalesced+cached serving matches explore/spacedot ($$got)"

# Observability smoke test: start spaced with the JSON request log and
# a hang fault that keeps enumerations open long enough to coalesce,
# then run cold / warm / coalesced requests and require (a) /metrics
# parses as OpenMetrics (omlint) and covers the labeled request
# families, (b) every request's X-Request-ID is echoed and appears on
# its access-log line, (c) the slow-flight diagnostic fired, and
# (d) the flight recorder links the coalesced follower to its leader's
# request ID. Needs curl and jq.
obs-smoke:
	@set -e; tmp=$$(mktemp -d); srv=""; \
	trap 'kill $$srv 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/spaced" ./cmd/spaced; \
	$(GO) build -o "$$tmp/omlint" ./cmd/omlint; \
	"$$tmp/spaced" -addr 127.0.0.1:0 -cache "$$tmp/cache" -ready-file "$$tmp/addr" \
		-log json -slow-flight 1ms -faults 'hang=c:100ms' \
		2>"$$tmp/spaced.log" & srv=$$!; \
	for i in $$(seq 1 100); do [ -s "$$tmp/addr" ] && break; sleep 0.1; done; \
	[ -s "$$tmp/addr" ] || { echo "obs-smoke: spaced never became ready"; cat "$$tmp/spaced.log"; exit 1; }; \
	addr=$$(head -n1 "$$tmp/addr"); \
	curl -fsS -H 'X-Request-ID: obs-cold' -D "$$tmp/h1" \
		-d '{"bench":"sha","func":"rotl"}' "http://$$addr/v1/enumerate" -o "$$tmp/r1.json"; \
	grep -qi '^x-request-id: obs-cold' "$$tmp/h1" \
		|| { echo "obs-smoke: client X-Request-ID not echoed"; cat "$$tmp/h1"; exit 1; }; \
	[ "$$(jq -r .cache "$$tmp/r1.json")" = miss ] \
		|| { echo "obs-smoke: cold request cache=$$(jq -r .cache "$$tmp/r1.json"), want miss"; exit 1; }; \
	curl -fsS -H 'X-Request-ID: obs-warm' \
		-d '{"bench":"sha","func":"rotl"}' "http://$$addr/v1/enumerate" -o "$$tmp/r2.json"; \
	[ "$$(jq -r .cache "$$tmp/r2.json")" = mem ] \
		|| { echo "obs-smoke: warm request cache=$$(jq -r .cache "$$tmp/r2.json"), want mem"; exit 1; }; \
	curl -fsS -H 'X-Request-ID: obs-lead' \
		-d '{"bench":"stringsearch","func":"tolower_c"}' "http://$$addr/v1/enumerate" -o "$$tmp/r3.json" & c1=$$!; \
	sleep 0.05; \
	curl -fsS -H 'X-Request-ID: obs-follow' \
		-d '{"bench":"stringsearch","func":"tolower_c"}' "http://$$addr/v1/enumerate" -o "$$tmp/r4.json" & c2=$$!; \
	wait $$c1; wait $$c2; \
	curl -fsS "http://$$addr/metrics" -o "$$tmp/metrics.txt"; \
	"$$tmp/omlint" -q "$$tmp/metrics.txt" \
		|| { echo "obs-smoke: /metrics rejected by omlint"; exit 1; }; \
	for want in \
		'http_request_duration_ns_bucket{endpoint="/v1/enumerate",status="200"' \
		'server_cache_requests_total{cache_tier="mem"}' \
		'server_cache_requests_total{cache_tier="miss"}' \
		'server_cache_requests_total{cache_tier="coalesced"}' \
		server_queue_depth server_flight_duration_ns_count; do \
		grep -qF "$$want" "$$tmp/metrics.txt" \
			|| { echo "obs-smoke: /metrics missing $$want"; exit 1; }; \
	done; \
	for id in obs-cold obs-warm obs-lead obs-follow; do \
		grep '"msg":"access"' "$$tmp/spaced.log" | grep -qF "\"request_id\":\"$$id\"" \
			|| { echo "obs-smoke: no access-log line for $$id"; cat "$$tmp/spaced.log"; exit 1; }; \
	done; \
	grep -q '"msg":"slow flight"' "$$tmp/spaced.log" \
		|| { echo "obs-smoke: slow-flight diagnostic never fired"; exit 1; }; \
	curl -fsS "http://$$addr/v1/debug/flights" -o "$$tmp/flights.json"; \
	jq -e '[.flights[] | select(.coalesced)] | length == 1' "$$tmp/flights.json" >/dev/null \
		|| { echo "obs-smoke: expected exactly one coalesced flight"; cat "$$tmp/flights.json"; exit 1; }; \
	leader=$$(jq -r '.flights[] | select(.coalesced) | .leader_request_id' "$$tmp/flights.json"); \
	fid=$$(jq -r '.flights[] | select(.coalesced) | .flight_id' "$$tmp/flights.json"); \
	jq -e --arg l "$$leader" --arg f "$$fid" \
		'[.flights[] | select((.coalesced | not) and .request_id == $$l and .flight_id == $$f)] | length == 1' \
		"$$tmp/flights.json" >/dev/null \
		|| { echo "obs-smoke: follower's leader_request_id=$$leader does not match the leader's record"; cat "$$tmp/flights.json"; exit 1; }; \
	jq -e '.flights[] | select(.cache == "miss") | .enumerate_ms > 0 and .total_ms >= .enumerate_ms' \
		"$$tmp/flights.json" | grep -qv false \
		|| { echo "obs-smoke: implausible timing splits"; cat "$$tmp/flights.json"; exit 1; }; \
	kill -TERM $$srv; \
	wait $$srv || { echo "obs-smoke: spaced did not drain cleanly"; cat "$$tmp/spaced.log"; exit 1; }; \
	srv=""; \
	echo "obs-smoke: request IDs, OpenMetrics, access log and flight recorder all line up"

# Distributed-enumeration crash test: coordinator + two workers, the
# lease holder SIGKILLed mid-space, hash parity with a single-node run
# and clean TERM drains required. scripts/cluster_smoke.sh has the
# details. Needs curl and jq.
cluster-smoke:
	sh scripts/cluster_smoke.sh

# cluster-smoke under injected network chaos: both workers run with a
# budgeted fault plan (dropped responses, stalled requests) on top of
# the SIGKILL, and the served bytes still may not change. Override the
# plan with REPRO_FAULTS, e.g.
# REPRO_FAULTS='httpdrop=4,httpslow=4:200ms' make chaos.
# The sharded harness rides along with the same plan: network faults
# compose with intra-space sharding, phase-level faults do not (they
# are keyed by shard-relative node sequence; DESIGN.md §14).
chaos:
	CLUSTER_FAULTS="$${REPRO_FAULTS:-httpdrop=2,httpslow=2:100ms}" sh scripts/cluster_smoke.sh
	CLUSTER_FAULTS="$${REPRO_FAULTS:-httpdrop=2,httpslow=2:100ms}" sh scripts/shard_smoke.sh

# Intra-space sharding crash test: coordinator with -shard-fanout 2 +
# two workers, one enumeration split into frontier shards across the
# fleet, the shard holder SIGKILLed mid-space, and the merged space —
# plus the equivalence tier derived from a second sharded merge —
# required to hash byte-identically (spacedot -hash) to single-node
# cmd/explore runs. scripts/shard_smoke.sh has the details. Needs curl
# and jq.
shard-smoke:
	sh scripts/shard_smoke.sh
