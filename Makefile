# Tier-1 verification: everything CI runs, runnable locally with
# "make check".

GO ?= go

.PHONY: check fmt vet build test race lint-fixtures bench-smoke

check: fmt vet build test race lint-fixtures

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The enumerator and the compilers are the concurrent subsystems; run
# their suites under the race detector.
race:
	$(GO) test -race ./internal/search/ ./internal/driver/ ./internal/telemetry/

# The rtllint fixtures double as an executable smoke test: the clean
# inputs must lint clean, the broken ones must fail.
lint-fixtures:
	$(GO) run ./cmd/rtllint cmd/rtllint/testdata/clean.rtl
	$(GO) run ./cmd/rtllint -batch cmd/rtllint/testdata/gcd.c
	@if $(GO) run ./cmd/rtllint cmd/rtllint/testdata/use_before_def.rtl >/dev/null; then \
		echo "use_before_def.rtl unexpectedly linted clean"; exit 1; fi
	@if $(GO) run ./cmd/rtllint cmd/rtllint/testdata/clobbered_ic.rtl >/dev/null; then \
		echo "clobbered_ic.rtl unexpectedly linted clean"; exit 1; fi

# Telemetry smoke test: instrument a tiny enumeration, then make
# phasestats re-read the snapshot and assert the core counters are
# nonzero. Catches metric-name drift and snapshot format breakage.
bench-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/explore -bench stringsearch -func tolower_c -check \
		-metrics "$$tmp/smoke.metrics.json" -trace "$$tmp/smoke.trace.json" && \
	$(GO) run ./cmd/phasestats -from-metrics "$$tmp/smoke.metrics.json" \
		-require search.nodes,search.attempts,check.verify.calls
