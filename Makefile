# Tier-1 verification: everything CI runs, runnable locally with
# "make check".

GO ?= go

.PHONY: check fmt vet build test race lint-fixtures bench-smoke bench-search resume-smoke

check: fmt vet build test race lint-fixtures

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The enumerator and the compilers are the concurrent subsystems; run
# their suites under the race detector. faultinject rides along: its
# faults fire on the enumerator's worker goroutines, so the panic /
# hang / corrupt paths must be race-clean too, and fingerprint because
# workers summarize instances concurrently through its pooled buffers.
race:
	$(GO) test -race ./internal/search/ ./internal/driver/ ./internal/telemetry/ ./internal/faultinject/ ./internal/fingerprint/

# The rtllint fixtures double as an executable smoke test: the clean
# inputs must lint clean, the broken ones must fail.
lint-fixtures:
	$(GO) run ./cmd/rtllint cmd/rtllint/testdata/clean.rtl
	$(GO) run ./cmd/rtllint -batch cmd/rtllint/testdata/gcd.c
	@if $(GO) run ./cmd/rtllint cmd/rtllint/testdata/use_before_def.rtl >/dev/null; then \
		echo "use_before_def.rtl unexpectedly linted clean"; exit 1; fi
	@if $(GO) run ./cmd/rtllint cmd/rtllint/testdata/clobbered_ic.rtl >/dev/null; then \
		echo "clobbered_ic.rtl unexpectedly linted clean"; exit 1; fi

# Telemetry smoke test: instrument a tiny enumeration, then make
# phasestats re-read the snapshot and assert the core counters are
# nonzero. Catches metric-name drift and snapshot format breakage.
bench-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/explore -bench stringsearch -func tolower_c -check \
		-metrics "$$tmp/smoke.metrics.json" -trace "$$tmp/smoke.trace.json" && \
	$(GO) run ./cmd/phasestats -from-metrics "$$tmp/smoke.metrics.json" \
		-require search.nodes,search.attempts,check.verify.calls

# Enumeration-throughput smoke: one iteration of the end-to-end search
# benchmark plus the dedup-index microbenchmark. Catches perf-path
# compile breakage and gross regressions cheaply; the real before/after
# numbers live in BENCH_search.json (EXPERIMENTS.md has the table).
bench-search:
	$(GO) test -run '^$$' -bench 'BenchmarkSearchRun/(bmh_search|get_code)' -benchmem -benchtime 1x .
	$(GO) test -run '^$$' -bench BenchmarkDedupIndex -benchmem -benchtime 100x ./internal/search/

# Crash/resume smoke test: SIGKILL an enumeration mid-run, resume it
# from its checkpoint file, and require the resumed space to hash
# identical (spacedot -hash, canonical serialization) to an
# uninterrupted run of the same function. If the machine is fast enough
# that the run finishes before the kill lands, the checkpoint file
# already holds the complete space and the comparison still applies.
resume-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/explore" ./cmd/explore && \
	$(GO) build -o "$$tmp/spacedot" ./cmd/spacedot && \
	"$$tmp/explore" -bench sha -func sha_transform -save "$$tmp" >/dev/null && \
	{ "$$tmp/explore" -bench sha -func sha_transform -checkpoint "$$tmp" >/dev/null 2>&1 & \
	pid=$$!; sleep 1.2; kill -9 $$pid 2>/dev/null || true; wait $$pid 2>/dev/null; } ; \
	"$$tmp/explore" -bench sha -func sha_transform -checkpoint "$$tmp" -resume >/dev/null && \
	a=$$("$$tmp/spacedot" -hash "$$tmp/sha.sha_transform.ckpt.space.gz" | cut -d' ' -f1) && \
	b=$$("$$tmp/spacedot" -hash "$$tmp/sha.sha_transform.space.gz" | cut -d' ' -f1) && \
	if [ "$$a" != "$$b" ]; then \
		echo "resume-smoke: resumed space differs from clean run: $$a vs $$b"; exit 1; \
	fi; \
	echo "resume-smoke: killed+resumed space identical to clean run ($$a)"
