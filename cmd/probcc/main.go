// Command probcc reproduces Table 7: it compiles every benchmark
// function with the old batch compiler and with the probabilistic
// batch compiler of Figure 8, then compares attempted phases, active
// phases, compilation time, code size and whole-program dynamic
// instruction counts.
//
// The probabilistic compiler needs the enabling/disabling statistics;
// pass a file produced by "phasestats -out" with -probs, or let probcc
// mine them first (the default, bounded by -minenodes/-minetimeout).
//
// Usage:
//
//	probcc [-probs file] [-minenodes n] [-minetimeout d] [-check]
//
// With -check, both compilers verify the RTL after every active phase
// with the internal/check semantic verifier; a violation aborts with
// the function, the active sequence and the offending phase.
//
// Observability: -metrics, -trace, -progress and -pprof behave as in
// cmd/explore. The mining searches and both compilers record into the
// same registry, so one -metrics file captures the full mine + compile
// pipeline (driver.batch.* next to driver.prob.* gives the Table 7
// cost comparison directly); an interrupt during mining still flushes
// the files.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/analysis"
	"repro/internal/check"
	"repro/internal/driver"
	"repro/internal/machine"
	"repro/internal/mibench"
	"repro/internal/opt"
	"repro/internal/search"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		probsPath   = flag.String("probs", "", "probability tables JSON (from phasestats -out)")
		mineNodes   = flag.Int("minenodes", 10000, "per-function instance cap when mining probabilities")
		mineTimeout = flag.Duration("minetimeout", 20*time.Second, "per-function search budget when mining")
		checkOpt    = flag.Bool("check", false, "verify the RTL after every active phase")
		tflags      telemetry.Flags
	)
	tflags.Register(flag.CommandLine)
	flag.Parse()

	session, err := tflags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer session.Close()
	if session.Registry != nil {
		opt.Metrics = opt.NewPhaseMetrics(session.Registry)
		check.Metrics = check.NewVerifyMetrics(session.Registry)
		driver.Metrics = session.Registry
	}
	driver.Trace = session.Tracer
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var probs *driver.Probabilities
	if *probsPath != "" {
		p, err := driver.LoadProbabilities(*probsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		probs = p
	} else {
		fmt.Println("mining enabling/disabling probabilities from the corpus...")
		funcs, err := mibench.AllFunctions()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		x := analysis.NewInteractions()
		for _, tf := range funcs {
			opts := search.Options{
				MaxNodes: *mineNodes,
				Timeout:  *mineTimeout,
				Check:    *checkOpt,
				Ctx:      ctx,
				Metrics:  session.Registry,
				Tracer:   session.Tracer,
			}
			if session.Progress {
				opts.ProgressInterval = 2 * time.Second
			}
			r := search.Run(tf.Func, opts)
			if fails := r.CheckFailures(); len(fails) > 0 {
				for _, n := range fails {
					fmt.Fprintf(os.Stderr, "%s: CHECK FAIL seq %q: %s\n", tf.Func.Name, n.Seq, n.CheckErr)
				}
				return 1
			}
			if ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "probcc: interrupted while mining; flushing telemetry")
				return 130
			}
			if !r.Aborted {
				x.Accumulate(r)
			}
		}
		probs = driver.FromInteractions(x)
	}

	// Installed after mining: the search has its own non-panicking
	// Check path, while the two batch compilers report violations
	// through Result.CheckErr (surfaced by CompareProgram).
	if *checkOpt {
		opt.PostCheck = check.Err
	}

	d := machine.StrongARM()
	fmt.Println()
	fmt.Println(driver.TableHeader())
	var (
		sumOldAtt, sumOldAct, sumProbAtt, sumProbAct int
		sumOldTime, sumProbTime                      time.Duration
		sumOldSize, sumProbSize                      int
		rows                                         int
	)
	for _, p := range mibench.All() {
		prog, err := p.Compile()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		cmp, err := driver.CompareProgram(prog, p.Driver, p.DriverArgs, d, probs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", p.Name, err)
			return 1
		}
		for _, r := range cmp.Rows {
			r.Function = fmt.Sprintf("%s(%s)", r.Function, p.Name[:1])
			fmt.Println(driver.FormatRow(r))
			sumOldAtt += r.OldAttempted
			sumOldAct += r.OldActive
			sumProbAtt += r.ProbAttempted
			sumProbAct += r.ProbActive
			sumOldTime += r.OldTime
			sumProbTime += r.ProbTime
			sumOldSize += r.OldSize
			sumProbSize += r.ProbSize
			rows++
		}
		fmt.Printf("%-16s dynamic instructions: batch %d, probabilistic %d (ratio %.3f)\n",
			"["+p.Name+"]", cmp.OldSteps, cmp.ProbSteps, cmp.SpeedRatio())
	}
	fmt.Println()
	fmt.Printf("averages over %d functions:\n", rows)
	fmt.Printf("  attempted phases: batch %.1f, probabilistic %.1f (ratio %.3f)\n",
		avg(sumOldAtt, rows), avg(sumProbAtt, rows), float64(sumProbAtt)/float64(sumOldAtt))
	fmt.Printf("  active phases:    batch %.1f, probabilistic %.1f\n",
		avg(sumOldAct, rows), avg(sumProbAct, rows))
	fmt.Printf("  compile time:     batch %s, probabilistic %s (ratio %.3f)\n",
		sumOldTime.Round(time.Microsecond), sumProbTime.Round(time.Microsecond),
		float64(sumProbTime)/float64(sumOldTime))
	fmt.Printf("  code size ratio (prob/old): %.3f\n", float64(sumProbSize)/float64(sumOldSize))
	return 0
}

func avg(total, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}
