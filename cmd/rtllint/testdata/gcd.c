/* Euclid's algorithm: a small mini-C input for rtllint -batch. */
int gcd(int a, int b) {
    while (b) {
        int t = a % b;
        a = b;
        b = t;
    }
    return a;
}
