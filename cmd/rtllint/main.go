// Command rtllint runs the internal/check semantic verifier over RTL,
// reporting every diagnostic with its function, block, instruction
// index and rule id. Inputs ending in .c are compiled from mini-C;
// anything else is parsed as one function in the paper's textual RTL
// notation. With no file arguments the input is read from stdin
// (textual RTL, or mini-C with -c).
//
// Usage:
//
//	rtllint [flags] [file ...]
//
//	-c            treat stdin as mini-C instead of textual RTL
//	-seq letters  apply this phase sequence (Table 1 IDs) before
//	              linting, verifying after every active phase
//	-batch        optimize with the batch compiler before linting
//	-machine name target description: strongarm (default) or mipslike
//	-nolints      suppress the advisory CFG lints, report errors only
//	-werror       treat lints as errors for the exit status
//	-json         emit one JSON object per diagnostic on stdout (JSON
//	              Lines): the internal/check Diagnostic fields plus the
//	              input file, with the CFG path witness as a block-ID
//	              array; progress and summary messages go to stderr
//
// In human output, a diagnostic whose rule has a path witness is
// followed by an indented "path: L0 -> L1 -> ..." line — the concrete
// control-flow path demonstrating the finding.
//
// The exit status is 1 when any error-tier diagnostic fires (or any
// diagnostic at all under -werror), 2 on usage or parse problems.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/check"
	"repro/internal/dataflow"
	"repro/internal/driver"
	"repro/internal/machine"
	"repro/internal/mc"
	"repro/internal/opt"
	"repro/internal/rtl"
)

func main() {
	var (
		cIn      = flag.Bool("c", false, "treat stdin as mini-C instead of textual RTL")
		seq      = flag.String("seq", "", "apply this phase sequence before linting")
		batch    = flag.Bool("batch", false, "optimize with the batch compiler before linting")
		machName = flag.String("machine", "strongarm", "target description: strongarm or mipslike")
		noLints  = flag.Bool("nolints", false, "suppress the advisory CFG lints")
		werror   = flag.Bool("werror", false, "treat lints as errors for the exit status")
		jsonOut  = flag.Bool("json", false, "emit one JSON object per diagnostic (JSON Lines)")
	)
	flag.Parse()

	var d *machine.Desc
	switch *machName {
	case "strongarm":
		d = machine.StrongARM()
	case "mipslike":
		d = machine.MIPSLike()
	default:
		fmt.Fprintf(os.Stderr, "rtllint: unknown machine %q (strongarm, mipslike)\n", *machName)
		os.Exit(2)
	}
	if *seq != "" && *batch {
		fmt.Fprintln(os.Stderr, "rtllint: -seq and -batch are mutually exclusive")
		os.Exit(2)
	}
	for i := 0; i < len(*seq); i++ {
		if opt.ByID((*seq)[i]) == nil {
			fmt.Fprintf(os.Stderr, "rtllint: unknown phase %q (see explore -phases)\n", (*seq)[i])
			os.Exit(2)
		}
	}

	opts := check.Options{Machine: d, Lints: !*noLints}
	// Under -json, stdout carries only the diagnostic stream; progress
	// and summary prose moves to stderr.
	msgW := io.Writer(os.Stdout)
	if *jsonOut {
		msgW = os.Stderr
	}
	errors, warnings := 0, 0
	enc := json.NewEncoder(os.Stdout)
	report := func(label string, diags []check.Diagnostic) {
		for _, dg := range diags {
			if *jsonOut {
				// The Diagnostic fields flattened alongside the input
				// file, one object per line.
				if err := enc.Encode(struct {
					File string `json:"file"`
					check.Diagnostic
				}{label, dg}); err != nil {
					fmt.Fprintf(os.Stderr, "rtllint: encoding diagnostic: %v\n", err)
					os.Exit(2)
				}
			} else {
				fmt.Printf("%s: %s\n", label, dg)
				if len(dg.Witness) > 0 {
					fmt.Printf("  path: %s\n", dataflow.FormatIDPath(dg.Witness))
				}
			}
			if dg.Severity == check.SevError {
				errors++
			} else {
				warnings++
			}
		}
	}

	lintProgram := func(label string, prog *rtl.Program) {
		for _, f := range prog.Funcs {
			if *batch {
				res := driver.Batch(f, d)
				if res.CheckErr != nil {
					fmt.Fprintf(msgW, "%s: %s: after active sequence %q: %v\n", label, f.Name, res.Seq, res.CheckErr)
					errors++
					continue
				}
			} else if *seq != "" {
				// Verify after every active phase so the report names
				// the offending phase, not just the end state.
				st := opt.State{}
				applied := ""
				violated := false
				for i := 0; i < len(*seq) && !violated; i++ {
					p := opt.ByID((*seq)[i])
					if !opt.Attempt(f, &st, p, d) {
						continue
					}
					applied += string((*seq)[i])
					if errs := check.Errors(check.Run(f, opts)); len(errs) != 0 {
						fmt.Fprintf(msgW, "%s: %s: after active sequence %q (offender %c):\n",
							label, f.Name, applied, (*seq)[i])
						report(label, errs)
						violated = true
					}
				}
				if violated {
					continue
				}
			}
			report(label, check.Run(f, opts))
		}
	}

	load := func(label string, src []byte, isC bool) {
		if isC {
			prog, err := mc.Compile(string(src))
			if err != nil {
				fmt.Fprintf(os.Stderr, "rtllint: %s: %v\n", label, err)
				os.Exit(2)
			}
			lintProgram(label, prog)
			return
		}
		f, err := rtl.ParseFunc(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtllint: %s: %v\n", label, err)
			os.Exit(2)
		}
		lintProgram(label, &rtl.Program{Funcs: []*rtl.Func{f}})
	}

	if flag.NArg() == 0 {
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtllint: stdin: %v\n", err)
			os.Exit(2)
		}
		load("<stdin>", src, *cIn)
	}
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtllint: %v\n", err)
			os.Exit(2)
		}
		load(path, src, strings.HasSuffix(path, ".c"))
	}

	if errors+warnings > 0 {
		fmt.Fprintf(msgW, "%d error(s), %d warning(s)\n", errors, warnings)
	}
	if errors > 0 || (*werror && warnings > 0) {
		os.Exit(1)
	}
}
