// Command omlint validates an OpenMetrics text exposition: the strict
// subset of the format spaced's /metrics endpoint emits (TYPE before
// samples, counter _total suffixes, cumulative le-ordered histogram
// buckets, terminating # EOF). It reads files or stdin and exits
// non-zero on the first violation, so smoke tests can assert a live
// /metrics response really parses:
//
//	curl -s localhost:8080/metrics | omlint
//	omlint metrics.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("omlint", flag.ExitOnError)
	quiet := fs.Bool("q", false, "suppress the per-input OK lines")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	inputs := fs.Args()
	if len(inputs) == 0 {
		inputs = []string{"-"}
	}
	rc := 0
	for _, name := range inputs {
		data, err := read(name)
		if err == nil {
			err = telemetry.ValidateOpenMetrics(data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "omlint: %s: %v\n", name, err)
			rc = 1
			continue
		}
		if !*quiet {
			fmt.Printf("%s: OK\n", name)
		}
	}
	return rc
}

func read(name string) ([]byte, error) {
	if name == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(name)
}
