// Command spaced serves exhaustive phase order enumeration over HTTP:
// POST a function (mini-C source or a MiBench corpus name) and search
// options to /v1/enumerate and it answers with the space summary,
// enumerating at most once per distinct (function, options) pair — a
// two-level content-addressed cache (in-memory LRU over a directory of
// v2 space files) serves repeats, and identical concurrent requests
// coalesce onto one enumeration.
//
//	spaced -addr localhost:8080 -cache ./spacecache -log json
//	curl -s localhost:8080/v1/enumerate -d '{"bench":"sha","func":"rotl"}'
//	curl -s localhost:8080/v1/space/<key> -o rotl.space.gz
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/metrics
//	curl -s localhost:8080/v1/debug/flights
//
// Every response carries an X-Request-ID (client-supplied or minted)
// that also tags the access-log line and any flight logs the request
// caused; /metrics serves the registry in the OpenMetrics text format
// and /v1/debug/flights replays the last -flights enumerate requests
// with queue-wait/enumerate/serialize timing splits.
//
// Served space files are byte-identical to cmd/explore -save output
// for the same function and options; spacedot -hash audits them.
// Requests beyond the worker pool queue are shed with 429 +
// Retry-After. SIGTERM/SIGINT drain: new requests get 503, in-flight
// enumerations are canceled and checkpoint their partial spaces into
// the cache directory, and the next request of the same key resumes
// from the checkpoint instead of starting over.
//
// With -worker -join <url> the same binary runs as a member of a
// coordinator's fleet instead of serving HTTP: it registers, long-polls
// /v1/dist/* for assignments, heartbeats its leases with progress
// checkpoints, and uploads finished spaces keyed by canonical hash.
// A coordinator is just a normal spaced with workers joined — requests
// that miss the cache are dispatched to the fleet and fall back to
// local enumeration when no worker is live.
//
//	spaced -addr localhost:8080 -cache ./coordcache        # terminal 1
//	spaced -worker -join http://localhost:8080 -scratch w1 # terminal 2
//	spaced -worker -join http://localhost:8080 -scratch w2 # terminal 3
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/distcl"
	"repro/internal/faultinject"
	"repro/internal/server"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run())
}

// fleetSearchWorkers resolves a fleet worker's per-search parallelism.
// An explicit -search-workers wins; otherwise the CPU count is split
// across the concurrent assignments (-jobs) so a worker process never
// oversubscribes itself the way jobs × NumCPU used to.
func fleetSearchWorkers(explicit, cpus, jobs int) int {
	if explicit > 0 {
		return explicit
	}
	if jobs < 1 {
		jobs = 1
	}
	w := cpus / jobs
	if w < 1 {
		w = 1
	}
	return w
}

func run() int {
	fs := flag.NewFlagSet("spaced", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8080", "listen address (host:0 picks a free port; see -ready-file)")
	cacheDir := fs.String("cache", "spacecache", "space cache directory")
	workers := fs.Int("workers", runtime.NumCPU(), "enumeration pool size")
	searchWorkers := fs.Int("search-workers", 0, "per-enumeration search parallelism cap; flights share a GOMAXPROCS CPU-token budget either way (0 = auto)")
	queue := fs.Int("queue", 16, "pending-enumeration queue depth; overflow is shed with 429")
	memEntries := fs.Int("mem", 64, "decoded spaces held in the in-memory LRU")
	deadline := fs.Duration("deadline", 60*time.Second, "default per-request wait when the client sets no deadline_ms")
	searchTimeout := fs.Duration("search-timeout", 0, "wall-time cap per enumeration (0 = unlimited)")
	grace := fs.Duration("grace", 15*time.Second, "shutdown grace period for draining and checkpointing")
	faults := fs.String("faults", "", "fault injection spec (falls back to $"+faultinject.EnvVar+")")
	readyFile := fs.String("ready-file", "", "write the bound address to this file once listening")
	logFormat := fs.String("log", "off", `structured request log format: "json", "text" or "off"`)
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
	slowFlight := fs.Duration("slow-flight", 30*time.Second, "log a per-phase latency breakdown for enumerate requests slower than this (0 = never)")
	flightLogSize := fs.Int("flights", 128, "requests replayed by GET /v1/debug/flights")
	debugPprof := fs.Bool("debug-pprof", false, "serve net/http/pprof under /debug/pprof/")
	diskMax := fs.Int64("disk-max-bytes", 0, "disk cache budget; least-recently-used spaces are evicted above it (0 = unbounded)")
	leaseTTL := fs.Duration("lease-ttl", 10*time.Second, "coordinator: assignment lease; a worker silent this long is re-dispatched")
	pollWait := fs.Duration("poll-wait", 5*time.Second, "coordinator: how long a worker long-poll parks before answering 204")
	dispatchAttempts := fs.Int("dispatch-attempts", 3, "coordinator: dispatches per assignment before falling back to local enumeration")
	shardFanout := fs.Int("shard-fanout", 0, "coordinator: split each enumeration into this many frontier shards across the fleet and merge the byte-identical space back (0/1 = off)")
	workerMode := fs.Bool("worker", false, "run as a fleet worker instead of serving HTTP (requires -join)")
	join := fs.String("join", "", "worker: coordinator base URL, e.g. http://localhost:8080")
	workerID := fs.String("worker-id", "", "worker: stable identity to register under (default: coordinator-minted)")
	scratch := fs.String("scratch", "", "worker: scratch directory for in-flight checkpoints (default: <cache>/worker-scratch)")
	jobs := fs.Int("jobs", 1, "worker: concurrent assignments")
	var tf telemetry.Flags
	tf.Register(fs)
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError

	session, err := tf.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "spaced:", err)
		return 1
	}
	defer session.Close() //nolint:errcheck // best-effort flush

	plan, err := faultinject.FromEnv()
	if err != nil {
		fmt.Fprintln(os.Stderr, "spaced:", err)
		return 1
	}
	if *faults != "" {
		if plan, err = faultinject.Parse(*faults); err != nil {
			fmt.Fprintln(os.Stderr, "spaced:", err)
			return 1
		}
	}

	reg := session.Registry
	if reg == nil {
		// /v1/stats serves counters whether or not -metrics is on.
		reg = telemetry.NewRegistry()
	}
	logger := telemetry.NewLogger(os.Stderr, *logFormat, telemetry.ParseLogLevel(*logLevel))

	if *workerMode {
		if *join == "" {
			fmt.Fprintln(os.Stderr, "spaced: -worker requires -join <coordinator url>")
			return 2
		}
		dir := *scratch
		if dir == "" {
			dir = *cacheDir + "/worker-scratch"
		}
		wk, err := distcl.NewWorker(distcl.WorkerConfig{
			Client: distcl.NewClient(distcl.Config{
				BaseURL: *join,
				Faults:  plan,
				Logger:  logger,
			}),
			ID:            *workerID,
			ScratchDir:    dir,
			Jobs:          *jobs,
			SearchWorkers: fleetSearchWorkers(*searchWorkers, *workers, *jobs),
			DrainTimeout:  *grace,
			Faults:        plan,
			Logger:        logger,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "spaced:", err)
			return 1
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		fmt.Fprintf(os.Stderr, "spaced: worker joining %s (scratch %s, %d jobs)\n", *join, dir, *jobs)
		if err := wk.Run(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "spaced:", err)
			return 1
		}
		return 0
	}

	srv, err := server.New(server.Config{
		Dir:             *cacheDir,
		MemEntries:      *memEntries,
		Workers:         *workers,
		QueueDepth:      *queue,
		DefaultDeadline: *deadline,
		SearchTimeout:   *searchTimeout,
		SearchWorkers:   *searchWorkers,
		Registry:        reg,
		Tracer:          session.Tracer,
		Faults:          plan,
		Logger:          logger,
		SlowFlight:      *slowFlight,
		FlightLogSize:   *flightLogSize,
		EnablePprof:     *debugPprof,
		DiskMaxBytes:    *diskMax,
		DistLeaseTTL:    *leaseTTL,
		DistPollWait:    *pollWait,
		DistMaxAttempts: *dispatchAttempts,
		ShardFanout:     *shardFanout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "spaced:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spaced:", err)
		return 1
	}
	if *readyFile != "" {
		if err := os.WriteFile(*readyFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "spaced:", err)
			return 1
		}
	}
	fmt.Fprintf(os.Stderr, "spaced: serving on http://%s (cache %s, %d workers, queue %d)\n",
		ln.Addr(), *cacheDir, *workers, *queue)

	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "spaced:", err)
		srv.Close()
		return 1
	case <-ctx.Done():
	}
	stop()

	// Drain: cancel in-flight enumerations first so they checkpoint
	// (srv.Close blocks until the workers retire), then let the HTTP
	// layer finish writing the resulting 503s.
	fmt.Fprintln(os.Stderr, "spaced: draining (in-flight enumerations checkpoint to the cache directory)")
	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	graceCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	select {
	case <-done:
	case <-graceCtx.Done():
		fmt.Fprintln(os.Stderr, "spaced: grace period expired with enumerations still draining")
		httpSrv.Close()
		return 1
	}
	if err := httpSrv.Shutdown(graceCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "spaced:", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "spaced: drained cleanly")
	return 0
}
