// Command spacedot renders a saved phase order space (explore -save)
// as a Graphviz DOT graph — the pictures of Figures 4 and 7. Nodes are
// labeled with instance code size (and weight with -weights); edges
// with the phase that transforms one instance into the other.
//
// Usage:
//
//	spacedot [-weights] [-maxnodes n] file.space.gz > space.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/search"
)

func main() {
	var (
		weights  = flag.Bool("weights", false, "label nodes with Figure 7 weights")
		maxNodes = flag.Int("maxnodes", 500, "refuse to render spaces larger than this")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: spacedot [flags] file.space.gz")
		os.Exit(2)
	}
	r, err := search.LoadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(r.Nodes) > *maxNodes {
		fmt.Fprintf(os.Stderr, "space has %d nodes; raise -maxnodes to render it anyway\n", len(r.Nodes))
		os.Exit(1)
	}
	var w []float64
	if *weights {
		w = analysis.Weights(r)
	}

	fmt.Printf("digraph %q {\n", r.FuncName)
	fmt.Println("  rankdir=TB;")
	fmt.Println("  node [shape=circle, fontsize=10];")
	for _, n := range r.Nodes {
		label := fmt.Sprintf("%d", n.NumInstrs)
		if *weights {
			label = fmt.Sprintf("%d\\nw=%.0f", n.NumInstrs, w[n.ID])
		}
		attrs := fmt.Sprintf("label=\"%s\"", label)
		if n.IsLeaf() {
			attrs += ", style=filled, fillcolor=lightgrey"
		}
		if n.ID == 0 {
			attrs += ", shape=doublecircle"
		}
		fmt.Printf("  n%d [%s];\n", n.ID, attrs)
	}
	for _, n := range r.Nodes {
		for _, e := range n.Edges {
			fmt.Printf("  n%d -> n%d [label=\"%c\", fontsize=9];\n", n.ID, e.To, e.Phase)
		}
	}
	fmt.Println("}")
}
