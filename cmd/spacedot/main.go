// Command spacedot renders a saved phase order space (explore -save)
// as a Graphviz DOT graph — the pictures of Figures 4 and 7. Nodes are
// labeled with instance code size (and weight with -weights); edges
// with the phase that transforms one instance into the other.
// Quarantined dead ends (phase panics, watchdog timeouts) are drawn in
// red; the unexpanded frontier of an interrupted checkpoint is dashed.
// In a space enumerated with explore -equiv, a node that absorbed
// raw-distinct but equivalent spellings is drawn with a double ring
// and an "×k" multiplicity (k raw instances in its class); the graph
// label summarizes the collapse.
//
// With -hash the graph is not rendered: the tool prints the SHA-256 of
// the space's canonical serialization instead, the equality used by
// the kill/resume determinism guarantee (two spaces hash equal exactly
// when they enumerate the same DAG, whatever their wall-clock fields).
//
// Usage:
//
//	spacedot [-weights] [-maxnodes n] file.space.gz > space.dot
//	spacedot -hash file.space.gz
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/search"
)

func main() {
	var (
		weights  = flag.Bool("weights", false, "label nodes with Figure 7 weights")
		maxNodes = flag.Int("maxnodes", 500, "refuse to render spaces larger than this")
		hash     = flag.Bool("hash", false, "print the SHA-256 of the canonical serialization and exit")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: spacedot [flags] file.space.gz")
		os.Exit(2)
	}
	r, err := search.LoadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *hash {
		h, err := r.CanonicalHash()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s  %s\n", h, flag.Arg(0))
		return
	}
	if len(r.Nodes) > *maxNodes {
		fmt.Fprintf(os.Stderr, "space has %d nodes; raise -maxnodes to render it anyway\n", len(r.Nodes))
		os.Exit(1)
	}
	var w []float64
	if *weights {
		if analysis.Cyclic(r) {
			fmt.Fprintln(os.Stderr, "space is cyclic (equivalence collapse folded a spelling into an ancestor class); -weights is undefined on it")
			os.Exit(1)
		}
		w = analysis.Weights(r)
	}
	frontier := make(map[int]bool)
	if cp := r.Checkpoint; cp != nil {
		for _, n := range cp.Frontier {
			frontier[n.ID] = true
		}
	}

	fmt.Printf("digraph %q {\n", r.FuncName)
	fmt.Println("  rankdir=TB;")
	fmt.Println("  node [shape=circle, fontsize=10];")
	var legend []string
	if len(frontier) > 0 {
		legend = append(legend, fmt.Sprintf("checkpoint: %d unexpanded frontier nodes (dashed)", len(frontier)))
	}
	if r.Equiv != nil {
		legend = append(legend, fmt.Sprintf(
			"equivalence collapse: %d raw instances -> %d classes (double ring ×k = k raw spellings)",
			r.Equiv.Raw, r.Equiv.Raw-r.Equiv.Merged))
	}
	if len(legend) > 0 {
		fmt.Printf("  label=\"%s\";\n", strings.Join(legend, "\\n"))
		fmt.Println("  labelloc=t;")
	}
	for _, n := range r.Nodes {
		if n.Quarantine != "" {
			fmt.Printf("  n%d [label=\"%c!\", color=red, fontcolor=red, shape=octagon, tooltip=%q];\n",
				n.ID, n.Seq[len(n.Seq)-1], n.Quarantine)
			continue
		}
		label := fmt.Sprintf("%d", n.NumInstrs)
		if *weights {
			label = fmt.Sprintf("%d\\nw=%.0f", n.NumInstrs, w[n.ID])
		}
		if n.EquivRaw > 1 {
			label += fmt.Sprintf("\\n×%d", n.EquivRaw)
		}
		attrs := fmt.Sprintf("label=\"%s\"", label)
		switch {
		case frontier[n.ID]:
			attrs += ", style=dashed"
		case n.IsLeaf():
			attrs += ", style=filled, fillcolor=lightgrey"
		}
		if n.ID == 0 {
			attrs += ", shape=doublecircle"
		} else if n.EquivRaw > 1 {
			attrs += ", peripheries=2"
		}
		fmt.Printf("  n%d [%s];\n", n.ID, attrs)
	}
	for _, n := range r.Nodes {
		for _, e := range n.Edges {
			style := ""
			if r.Nodes[e.To].Quarantine != "" {
				style = ", color=red"
			}
			fmt.Printf("  n%d -> n%d [label=\"%c\", fontsize=9%s];\n", n.ID, e.To, e.Phase, style)
		}
	}
	fmt.Println("}")
}
