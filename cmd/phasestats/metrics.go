package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/opt"
	"repro/internal/telemetry"
)

// runFromMetrics implements the -from-metrics mode: merge the named
// snapshot files and render the per-phase cost table that the metric
// names opt.attempt.<id>.{active,dormant} and
// opt.phase.<id>.duration_ns encode, followed by the search and
// verifier totals. Labeled series (family{k="v"} names, as spaced's
// request metrics are recorded) are folded into their base family
// first, so totals and -require see the aggregate across labels; by,
// when non-empty, additionally prints a per-value breakdown over that
// label key. requireList names counters that must be nonzero, the
// hook "make bench-smoke" uses to assert an instrumented run actually
// measured something.
func runFromMetrics(patterns, requireList, by string) int {
	var paths []string
	for _, pat := range strings.Split(patterns, ",") {
		pat = strings.TrimSpace(pat)
		if pat == "" {
			continue
		}
		matches, err := filepath.Glob(pat)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad pattern %q: %v\n", pat, err)
			return 2
		}
		if len(matches) == 0 {
			fmt.Fprintf(os.Stderr, "no metrics files match %q\n", pat)
			return 1
		}
		paths = append(paths, matches...)
	}
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "-from-metrics needs at least one file")
		return 2
	}

	var merged telemetry.Snapshot
	for i, p := range paths {
		s, err := telemetry.ReadSnapshotFile(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if i == 0 {
			merged = s
		} else {
			merged = merged.Merge(s)
		}
	}

	merged = collapseLabels(merged)
	printPhaseCosts(merged, len(paths))
	printSearchTotals(merged)
	if by != "" {
		printLabelBreakdown(merged, by)
	}

	if requireList != "" {
		missing := 0
		for _, name := range strings.Split(requireList, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if merged.Counters[name] <= 0 {
				fmt.Fprintf(os.Stderr, "require: counter %q is zero or absent\n", name)
				missing++
			}
		}
		if missing > 0 {
			return 1
		}
		fmt.Printf("require: all of [%s] nonzero\n", requireList)
	}
	return 0
}

// collapseLabels folds every labeled series into its base family —
// counters and histogram cells add, gauges keep the high-water reading
// — while leaving the labeled series in place for breakdowns. After
// this, code that addresses plain family names (the tables below,
// -require) sees the label-aggregated totals.
func collapseLabels(s telemetry.Snapshot) telemetry.Snapshot {
	base := telemetry.Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]telemetry.HistogramSnapshot{},
	}
	for name, v := range s.Counters {
		if fam, labels, ok := telemetry.ParseSeries(name); ok && len(labels) > 0 {
			base.Counters[fam] += v
		}
	}
	for name, v := range s.Gauges {
		if fam, labels, ok := telemetry.ParseSeries(name); ok && len(labels) > 0 {
			if cur, seen := base.Gauges[fam]; !seen || v > cur {
				base.Gauges[fam] = v
			}
		}
	}
	for name, h := range s.Histograms {
		if fam, labels, ok := telemetry.ParseSeries(name); ok && len(labels) > 0 {
			base = base.Merge(telemetry.Snapshot{
				Histograms: map[string]telemetry.HistogramSnapshot{fam: h},
			})
		}
	}
	return s.Merge(base)
}

// printLabelBreakdown renders counters and histograms that carry the
// given label key, grouped family → label value. This is the -by view:
// e.g. -by endpoint splits http.requests per route, -by cache_tier
// splits server.cache.requests per tier.
func printLabelBreakdown(s telemetry.Snapshot, key string) {
	type cell struct{ fam, val string }
	counters := map[cell]int64{}
	hists := map[cell]telemetry.HistogramSnapshot{}
	valueOf := func(series string) (string, string, bool) {
		fam, labels, ok := telemetry.ParseSeries(series)
		if !ok {
			return "", "", false
		}
		for _, l := range labels {
			if l.Key == key {
				return fam, l.Value, true
			}
		}
		return "", "", false
	}
	for name, v := range s.Counters {
		if fam, val, ok := valueOf(name); ok {
			counters[cell{fam, val}] += v
		}
	}
	for name, h := range s.Histograms {
		if fam, val, ok := valueOf(name); ok {
			c := cell{fam, val}
			merged := telemetry.Snapshot{Histograms: map[string]telemetry.HistogramSnapshot{"x": hists[c]}}.
				Merge(telemetry.Snapshot{Histograms: map[string]telemetry.HistogramSnapshot{"x": h}})
			hists[c] = merged.Histograms["x"]
		}
	}
	if len(counters) == 0 && len(hists) == 0 {
		fmt.Printf("\nno series carry label %q\n", key)
		return
	}

	sortCells := func(m map[cell]bool) []cell {
		out := make([]cell, 0, len(m))
		for c := range m {
			out = append(out, c)
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].fam != out[j].fam {
				return out[i].fam < out[j].fam
			}
			return out[i].val < out[j].val
		})
		return out
	}
	if len(counters) > 0 {
		fmt.Printf("\nCounters by %s:\n\n", key)
		fmt.Printf("%-32s %-24s %12s\n", "counter", key, "value")
		keys := map[cell]bool{}
		for c := range counters {
			keys[c] = true
		}
		for _, c := range sortCells(keys) {
			fmt.Printf("%-32s %-24s %12d\n", c.fam, c.val, counters[c])
		}
	}
	if len(hists) > 0 {
		fmt.Printf("\nHistograms by %s:\n\n", key)
		fmt.Printf("%-32s %-24s %10s %12s %12s\n", "histogram", key, "count", "mean", "total")
		keys := map[cell]bool{}
		for c := range hists {
			keys[c] = true
		}
		for _, c := range sortCells(keys) {
			h := hists[c]
			fmt.Printf("%-32s %-24s %10d %12s %12s\n", c.fam, c.val, h.Count,
				time.Duration(int64(h.Mean())).Round(time.Nanosecond),
				time.Duration(h.Sum).Round(time.Microsecond))
		}
	}
}

// printPhaseCosts renders the per-phase attempt/cost table aggregated
// across every snapshot: the compile-time side of Table 3's "Attempted
// Phases" column and Table 7's cost comparison.
func printPhaseCosts(s telemetry.Snapshot, files int) {
	fmt.Printf("Per-phase cost, aggregated over %d metric snapshot(s):\n\n", files)
	fmt.Printf("%-3s %-28s %10s %9s %9s %8s %10s %10s\n",
		"ph", "name", "attempted", "active", "dormant", "act%", "total", "mean")
	var totAtt, totAct int64
	var totNS int64
	for _, p := range opt.All() {
		id := p.ID()
		active := s.Counters[fmt.Sprintf("opt.attempt.%c.active", id)]
		dormant := s.Counters[fmt.Sprintf("opt.attempt.%c.dormant", id)]
		attempted := active + dormant
		h := s.Histograms[fmt.Sprintf("opt.phase.%c.duration_ns", id)]
		totAtt += attempted
		totAct += active
		totNS += h.Sum
		actPct := 0.0
		if attempted > 0 {
			actPct = 100 * float64(active) / float64(attempted)
		}
		fmt.Printf("%-3c %-28s %10d %9d %9d %7.1f%% %10s %10s\n",
			id, clipName(p.Name(), 28), attempted, active, dormant, actPct,
			time.Duration(h.Sum).Round(time.Microsecond),
			time.Duration(int64(h.Mean())).Round(time.Nanosecond))
	}
	actPct := 0.0
	if totAtt > 0 {
		actPct = 100 * float64(totAct) / float64(totAtt)
	}
	fmt.Printf("%-3s %-28s %10d %9d %9d %7.1f%% %10s\n\n",
		"Σ", "all phases", totAtt, totAct, totAtt-totAct, actPct,
		time.Duration(totNS).Round(time.Microsecond))
}

// fmtBytes renders a byte count with a binary unit suffix.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

func clipName(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

// printSearchTotals renders the enumeration and verification counters
// when present (they are absent from plain vpocc compiles).
func printSearchTotals(s telemetry.Snapshot) {
	nodes := s.Counters["search.nodes"]
	attempts := s.Counters["search.attempts"]
	if nodes > 0 || attempts > 0 {
		fmt.Printf("search: %d nodes (%d merged dups), %d edges, %d attempts (%d dormant)\n",
			nodes, s.Counters["search.merged"], s.Counters["search.edges"],
			attempts, s.Counters["search.dormant"])
		if h, ok := s.Histograms["search.expand.duration_ns"]; ok && h.Count > 0 {
			fmt.Printf("search: expand mean %s over %d evaluations; state-key mean %s\n",
				time.Duration(int64(h.Mean())).Round(time.Nanosecond), h.Count,
				time.Duration(int64(s.Histograms["search.statekey.duration_ns"].Mean())).Round(time.Nanosecond))
		}
		if probes := s.Counters["search.index.probes"]; probes > 0 {
			// Two-tier identical-instance index: nearly every probe
			// should resolve on the (flags, fingerprint) hash alone;
			// byte-compares count second-tier bucket scans and
			// fpcollisions the compares that found a fingerprint
			// collision rather than a true duplicate.
			fmt.Printf("search: index %d probes, %d byte-compares, %d fingerprint collisions; %s retained key bytes\n",
				probes, s.Counters["search.index.bytecompares"],
				s.Counters["search.index.fpcollisions"],
				fmtBytes(s.Gauges["search.index.retained_bytes"]))
		}
		if acq := s.Counters["search.index.stripe.acquisitions"]; acq > 0 {
			// Striped-lock contention: acquisitions counts stripe-lock
			// takes on the probe path, contended the subset that had to
			// block behind another worker. High contention means the
			// fingerprint CRC is clustering keys into few stripes (or
			// the worker count dwarfs the stripe count).
			cont := s.Counters["search.index.stripe.contended"]
			fmt.Printf("search: stripes %d lock acquisitions, %d contended (%.2f%%)\n",
				acq, cont, 100*float64(cont)/float64(acq))
		}
	}
	if calls := s.Counters["check.verify.calls"]; calls > 0 {
		var findings int64
		for name, v := range s.Counters {
			if strings.HasPrefix(name, "check.finding.") {
				findings += v
			}
		}
		h := s.Histograms["check.verify.duration_ns"]
		fmt.Printf("check:  %d verifications, %d findings, mean %s\n",
			calls, findings, time.Duration(int64(h.Mean())).Round(time.Nanosecond))
	}
	// Fleet counters from a coordinator snapshot. The labeled per-worker
	// series (dist.completions{worker=...}) were already folded into
	// their base families by collapseLabels, so these are fleet-wide
	// totals; -by worker recovers the per-worker split.
	if asn := s.Counters["dist.assignments"]; asn > 0 {
		fmt.Printf("dist:   %d assignments, %d completions, %d lease expiries, %d retries, %d recoveries, %d stale uploads, %d local fallbacks\n",
			asn, s.Counters["dist.completions"], s.Counters["dist.lease_expiries"],
			s.Counters["dist.retries"], s.Counters["dist.recoveries"],
			s.Counters["dist.stale_uploads"], s.Counters["dist.local_fallbacks"])
	}
	if splits := s.Counters["dist.shard.splits"]; splits > 0 || s.Counters["dist.shard.fallbacks"] > 0 {
		fmt.Printf("dist:   shards: %d splits into %d shard assignments, %d merges, %d merge failures, %d fallbacks, %d warmup completions\n",
			splits, s.Counters["dist.shard.assignments"], s.Counters["dist.shard.merges"],
			s.Counters["dist.shard.merge_failures"], s.Counters["dist.shard.fallbacks"],
			s.Counters["dist.shard.warmup_completions"])
	}
	for _, compiler := range []string{"batch", "prob"} {
		if n := s.Counters["driver."+compiler+".compiles"]; n > 0 {
			h := s.Histograms["driver."+compiler+".duration_ns"]
			fmt.Printf("driver: %-5s %d compiles, %.1f attempted / %.1f active phases per function, mean %s\n",
				compiler, n,
				float64(s.Counters["driver."+compiler+".attempted"])/float64(n),
				float64(s.Counters["driver."+compiler+".active"])/float64(n),
				time.Duration(int64(h.Mean())).Round(time.Microsecond))
		}
	}
}
