// Command phasestats enumerates the phase order spaces of the
// benchmark suite and prints the optimization phase interaction
// statistics of Section 5: the enabling probabilities (Table 4), the
// disabling probabilities (Table 5) and the independence relationships
// (Table 6). With -out it also writes the probability tables to a JSON
// file that cmd/probcc feeds to the probabilistic batch compiler.
//
// With -from-metrics, phasestats instead aggregates metric snapshot
// files written by the -metrics flag of explore/vpocc/probcc into a
// per-phase cost table (attempts, active rate, total and mean time per
// phase — the cost side of the paper's Table 3/7 analysis) plus the
// search and verifier totals. Snapshots merge associatively, so any
// number of per-run files combine into one table.
//
// Usage:
//
//	phasestats [-maxnodes n] [-timeout d] [-enable] [-disable] [-indep] [-out file]
//	phasestats -from-metrics m1.json,m2.json [-require counter,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/analysis"
	"repro/internal/driver"
	"repro/internal/mibench"
	"repro/internal/search"
)

func main() {
	var (
		maxNodes    = flag.Int("maxnodes", 20000, "per-function instance cap for the mining searches")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-function search budget")
		enable      = flag.Bool("enable", false, "print only the enabling table")
		disable     = flag.Bool("disable", false, "print only the disabling table")
		indep       = flag.Bool("indep", false, "print only the independence table")
		out         = flag.String("out", "", "write probability tables to this JSON file")
		loadDir     = flag.String("load", "", "analyze saved spaces from this directory (explore -save) instead of re-enumerating")
		fromMetrics = flag.String("from-metrics", "", "aggregate per-phase costs from these metrics snapshots (comma-separated paths or globs) instead of enumerating")
		require     = flag.String("require", "", "with -from-metrics: comma-separated counters that must be nonzero (exit 1 otherwise)")
	)
	flag.Parse()

	if *fromMetrics != "" {
		os.Exit(runFromMetrics(*fromMetrics, *require))
	}
	if *require != "" {
		fmt.Fprintln(os.Stderr, "-require only applies with -from-metrics")
		os.Exit(2)
	}
	all := !*enable && !*disable && !*indep

	x := analysis.NewInteractions()
	mined, skipped := 0, 0
	start := time.Now()
	if *loadDir != "" {
		paths, err := filepath.Glob(filepath.Join(*loadDir, "*.space.gz"))
		if err != nil || len(paths) == 0 {
			fmt.Fprintf(os.Stderr, "no saved spaces in %s\n", *loadDir)
			os.Exit(1)
		}
		for _, p := range paths {
			r, err := search.LoadFile(p)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if r.Checkpoint != nil {
				// An interrupted checkpoint (explore -checkpoint) is a
				// partial enumeration; mining it would bias the tables.
				fmt.Fprintf(os.Stderr, "phasestats: %s is an unfinished checkpoint (%d frontier nodes); skipping — resume it with explore -resume\n",
					p, len(r.Checkpoint.Frontier))
				skipped++
				continue
			}
			x.Accumulate(r)
			mined++
		}
	} else {
		funcs, err := mibench.AllFunctions()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, tf := range funcs {
			r := search.Run(tf.Func, search.Options{
				MaxNodes: *maxNodes,
				Timeout:  *timeout,
			})
			if r.Aborted {
				skipped++
				continue
			}
			x.Accumulate(r)
			mined++
		}
	}
	fmt.Printf("mined %d function spaces (%d exceeded caps) in %s\n\n",
		mined, skipped, time.Since(start).Round(time.Millisecond))

	if all || *enable {
		fmt.Println(analysis.FormatTable(
			"Table 4: probability of each phase (row) being ENABLED by another phase (column)",
			x.Enabling(), x.StartProbabilities(), 0.005, 0))
	}
	if all || *disable {
		fmt.Println(analysis.FormatTable(
			"Table 5: probability of each phase (row) being DISABLED by another phase (column)",
			x.Disabling(), nil, 0.005, 0))
	}
	if all || *indep {
		fmt.Println(analysis.FormatTable(
			"Table 6: probability of each phase pair being INDEPENDENT (blank > 0.995)",
			x.Independence(), nil, 0.005, 0.995))
	}

	if *out != "" {
		if err := driver.SaveProbabilities(*out, driver.FromInteractions(x)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("probability tables written to %s\n", *out)
	}
}
