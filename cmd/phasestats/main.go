// Command phasestats enumerates the phase order spaces of the
// benchmark suite and prints the optimization phase interaction
// statistics of Section 5: the enabling probabilities (Table 4), the
// disabling probabilities (Table 5) and the independence relationships
// (Table 6). With -out it also writes the probability tables to a JSON
// file that cmd/probcc feeds to the probabilistic batch compiler.
//
// With -from-metrics, phasestats instead aggregates metric snapshot
// files written by the -metrics flag of explore/vpocc/probcc into a
// per-phase cost table (attempts, active rate, total and mean time per
// phase — the cost side of the paper's Table 3/7 analysis) plus the
// search and verifier totals. Snapshots merge associatively, so any
// number of per-run files combine into one table.
//
// With -equiv the mining searches run with the equivalence tier
// (search.Options.Equiv) and an extra table attributes the folded
// instances to the phase that generated each redundant spelling —
// which phases merely reshuffle the representation rather than change
// the code. Saved spaces that were enumerated with explore -equiv
// contribute to the same table under -load.
//
// Usage:
//
//	phasestats [-maxnodes n] [-timeout d] [-enable] [-disable] [-indep] [-equiv] [-out file]
//	phasestats -from-metrics m1.json,m2.json [-require counter,...] [-by label]
//
// Labeled series (family{k="v"} names, as spaced's request metrics
// are recorded) fold into their base family for the tables and
// -require; -by <label> additionally prints per-label-value breakdowns
// (e.g. -by endpoint, -by cache_tier).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/driver"
	"repro/internal/mibench"
	"repro/internal/opt"
	"repro/internal/search"
)

func main() {
	var (
		maxNodes    = flag.Int("maxnodes", 20000, "per-function instance cap for the mining searches")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-function search budget")
		enable      = flag.Bool("enable", false, "print only the enabling table")
		disable     = flag.Bool("disable", false, "print only the disabling table")
		indep       = flag.Bool("indep", false, "print only the independence table")
		out         = flag.String("out", "", "write probability tables to this JSON file")
		equiv       = flag.Bool("equiv", false, "mine with the equivalence tier and attribute redundant instances per phase")
		loadDir     = flag.String("load", "", "analyze saved spaces from this directory (explore -save) instead of re-enumerating")
		fromMetrics = flag.String("from-metrics", "", "aggregate per-phase costs from these metrics snapshots (comma-separated paths or globs) instead of enumerating")
		require     = flag.String("require", "", "with -from-metrics: comma-separated counters that must be nonzero (exit 1 otherwise)")
		by          = flag.String("by", "", "with -from-metrics: also break labeled families down by this label key (e.g. endpoint, cache_tier)")
	)
	flag.Parse()

	if *fromMetrics != "" {
		os.Exit(runFromMetrics(*fromMetrics, *require, *by))
	}
	if *require != "" || *by != "" {
		fmt.Fprintln(os.Stderr, "-require and -by only apply with -from-metrics")
		os.Exit(2)
	}
	all := !*enable && !*disable && !*indep

	x := analysis.NewInteractions()
	mined, skipped, cyclic := 0, 0, 0
	equivRaw, equivMerged := 0, 0
	equivByPhase := make(map[string]int)
	collectEquiv := func(r *search.Result) {
		if r.Equiv == nil {
			return
		}
		equivRaw += r.Equiv.Raw
		equivMerged += r.Equiv.Merged
		for id, n := range r.Equiv.RedundantByPhase {
			equivByPhase[id] += n
		}
	}
	start := time.Now()
	if *loadDir != "" {
		paths, err := filepath.Glob(filepath.Join(*loadDir, "*.space.gz"))
		if err != nil || len(paths) == 0 {
			fmt.Fprintf(os.Stderr, "no saved spaces in %s\n", *loadDir)
			os.Exit(1)
		}
		for _, p := range paths {
			r, err := search.LoadFile(p)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if r.Checkpoint != nil {
				// An interrupted checkpoint (explore -checkpoint) is a
				// partial enumeration; mining it would bias the tables.
				fmt.Fprintf(os.Stderr, "phasestats: %s is an unfinished checkpoint (%d frontier nodes); skipping — resume it with explore -resume\n",
					p, len(r.Checkpoint.Frontier))
				skipped++
				continue
			}
			collectEquiv(r)
			if !x.Accumulate(r) {
				cyclic++
				continue
			}
			mined++
		}
	} else {
		funcs, err := mibench.AllFunctions()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, tf := range funcs {
			r := search.Run(tf.Func, search.Options{
				MaxNodes: *maxNodes,
				Timeout:  *timeout,
				Equiv:    *equiv,
			})
			if r.Aborted {
				skipped++
				continue
			}
			collectEquiv(r)
			if !x.Accumulate(r) {
				cyclic++
				continue
			}
			mined++
		}
	}
	fmt.Printf("mined %d function spaces (%d exceeded caps) in %s\n",
		mined, skipped, time.Since(start).Round(time.Millisecond))
	if cyclic > 0 {
		// Folding a spelling back into an ancestor class makes the
		// collapsed graph cyclic; the Figure 7 weighting behind the
		// probability tables is undefined there.
		fmt.Printf("%d equivalence-collapsed spaces are cyclic and were left out of Tables 4-6 (their collapse still counts below)\n", cyclic)
	}
	fmt.Println()

	if *equiv || equivRaw > 0 {
		printEquivTable(equivRaw, equivMerged, equivByPhase)
	}

	if all || *enable {
		fmt.Println(analysis.FormatTable(
			"Table 4: probability of each phase (row) being ENABLED by another phase (column)",
			x.Enabling(), x.StartProbabilities(), 0.005, 0))
	}
	if all || *disable {
		fmt.Println(analysis.FormatTable(
			"Table 5: probability of each phase (row) being DISABLED by another phase (column)",
			x.Disabling(), nil, 0.005, 0))
	}
	if all || *indep {
		fmt.Println(analysis.FormatTable(
			"Table 6: probability of each phase pair being INDEPENDENT (blank > 0.995)",
			x.Independence(), nil, 0.005, 0.995))
	}

	if *out != "" {
		if err := driver.SaveProbabilities(*out, driver.FromInteractions(x)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("probability tables written to %s\n", *out)
	}
}

// printEquivTable renders the equivalence-tier attribution: how many
// raw-distinct instances each phase generated that were equivalent —
// beyond register/label renumbering — to an instance already in the
// space. A high share means the phase often reshuffles the spelling of
// the code (jump layout, operand order) without changing it.
func printEquivTable(raw, merged int, byPhase map[string]int) {
	fmt.Println("Equivalence-tier redundancy by phase (instances folded into an existing class):")
	if merged == 0 {
		fmt.Printf("  none: all %d raw instances were pairwise distinct beyond renumbering\n\n", raw)
		return
	}
	ids := make([]string, 0, len(byPhase))
	for id := range byPhase {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		name := "?"
		if len(id) == 1 {
			if p := opt.ByID(id[0]); p != nil {
				name = p.Name()
			}
		}
		fmt.Printf("  %s  %-34s %8d  %5.1f%%\n", id, name, byPhase[id],
			100*float64(byPhase[id])/float64(merged))
	}
	fmt.Printf("  total: %d of %d raw instances folded (%.1f%% collapse)\n\n",
		merged, raw, 100*float64(merged)/float64(raw))
}
