// Command vpocc is the compiler driver: it compiles a mini-C source
// file to RTL and optimizes it, either with the batch compiler's fixed
// phase order or with an explicit phase sequence, then prints the
// resulting RTL (and optionally runs the program).
//
// Usage:
//
//	vpocc [flags] file.c
//
//	-seq letters   apply exactly this phase sequence (Table 1 IDs,
//	               e.g. "sckshl"); default is the batch compiler
//	-O0            print the unoptimized RTL
//	-func name     restrict output to one function
//	-run entry     execute the named function after compilation
//	-args a,b,c    integer arguments for -run
//	-time          print per-function compile statistics
//	-rtl           treat the input as textual RTL (one function in the
//	               paper's notation) instead of mini-C
//	-check         verify the RTL after every active phase with the
//	               internal/check semantic verifier; on a violation the
//	               offending phase and the sequence leading to it are
//	               reported and the exit status is nonzero
//
// Observability: -metrics, -trace, -progress and -pprof behave as in
// cmd/explore; a compile's metrics include the per-phase attempt
// counters and the driver.batch.* series, and the trace shows one
// driver.batch span per function.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/check"
	"repro/internal/driver"
	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/mc"
	"repro/internal/opt"
	"repro/internal/rtl"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		seq      = flag.String("seq", "", "explicit phase sequence (Table 1 IDs)")
		noOpt    = flag.Bool("O0", false, "print unoptimized RTL")
		funcName = flag.String("func", "", "restrict output to one function")
		runEntry = flag.String("run", "", "execute this function after compiling")
		runArgs  = flag.String("args", "", "comma-separated integer arguments for -run")
		showTime = flag.Bool("time", false, "print per-function compile statistics")
		rtlIn    = flag.Bool("rtl", false, "input is textual RTL, not mini-C")
		checkOpt = flag.Bool("check", false, "verify the RTL after every active phase")
		tflags   telemetry.Flags
	)
	tflags.Register(flag.CommandLine)
	flag.Parse()
	if *checkOpt {
		opt.PostCheck = check.Err
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vpocc [flags] file.c")
		return 2
	}
	session, err := tflags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer session.Close()
	if session.Registry != nil {
		opt.Metrics = opt.NewPhaseMetrics(session.Registry)
		check.Metrics = check.NewVerifyMetrics(session.Registry)
		driver.Metrics = session.Registry
	}
	driver.Trace = session.Tracer

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var prog *rtl.Program
	if *rtlIn {
		f, err := rtl.ParseFunc(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		prog = &rtl.Program{Funcs: []*rtl.Func{f}}
	} else {
		p, err := mc.Compile(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		prog = p
	}

	d := machine.StrongARM()
	if !*noOpt {
		for _, f := range prog.Funcs {
			if *seq != "" {
				if err := applySeq(f, *seq, d); err != nil {
					fmt.Fprintf(os.Stderr, "%s: %v\n", f.Name, err)
					return 1
				}
				continue
			}
			res := driver.Batch(f, d)
			if res.CheckErr != nil {
				fmt.Fprintf(os.Stderr, "%s: after active sequence %q: %v\n",
					f.Name, res.Seq, res.CheckErr)
				return 1
			}
			if *showTime {
				fmt.Fprintf(os.Stderr, "%s: attempted %d, active %d (%s), %s\n",
					f.Name, res.Attempted, res.Active, res.Seq, res.Elapsed)
			}
		}
	}

	for _, f := range prog.Funcs {
		if *funcName != "" && f.Name != *funcName {
			continue
		}
		fmt.Print(f.String())
		fmt.Println()
	}

	if *runEntry != "" {
		var args []int32
		if *runArgs != "" {
			for _, s := range strings.Split(*runArgs, ",") {
				v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 32)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					return 2
				}
				args = append(args, int32(v))
			}
		}
		res, err := interp.Run(prog, *runEntry, args...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("%s(%v) = %d   [%d instructions executed]\n", *runEntry, args, res.Ret, res.Steps)
		for _, v := range res.Trace {
			fmt.Printf("trace: %d\n", v)
		}
	}
	return 0
}

// applySeq applies an explicit phase sequence followed by the
// compulsory entry/exit fixup. When -check installed opt.PostCheck, a
// violation's panic is recovered here and reported with the sequence
// prefix that led to the offending phase.
func applySeq(f *rtl.Func, seq string, d *machine.Desc) (err error) {
	for i := 0; i < len(seq); i++ {
		if opt.ByID(seq[i]) == nil {
			return fmt.Errorf("unknown phase %q (see explore -phases)", seq[i])
		}
	}
	applied := ""
	defer func() {
		if r := recover(); r != nil {
			ce, ok := r.(*opt.CheckError)
			if !ok {
				panic(r)
			}
			err = fmt.Errorf("after active sequence %q: %w", applied, ce)
		}
	}()
	st := opt.State{}
	for i := 0; i < len(seq); i++ {
		p := opt.ByID(seq[i])
		if opt.Attempt(f, &st, p, d) {
			applied += string(seq[i])
		}
	}
	opt.FixEntryExit(f)
	if opt.PostCheck != nil {
		if e := opt.PostCheck(f, d); e != nil {
			return fmt.Errorf("after active sequence %q: %w", applied,
				&opt.CheckError{Phase: '=', Err: e})
		}
	}
	return nil
}
