package main

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMain lets the test binary double as the explore binary: when
// re-executed with EXPLORE_UNDER_TEST=1 it runs main() on its own
// arguments, so the batch/exit-code tests exercise the real process
// boundary (buffered output commit, exit status) without a separate
// build step.
func TestMain(m *testing.M) {
	if os.Getenv("EXPLORE_UNDER_TEST") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// runExplore re-executes the test binary as explore with args,
// returning stdout and the exit code.
func runExplore(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "EXPLORE_UNDER_TEST=1")
	var out, errOut bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errOut
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("explore %v: %v\nstderr: %s", args, err, errOut.String())
		}
		code = ee.ExitCode()
	}
	return out.String(), code
}

// TestMixedBatchJobsDeterministic runs a batch where some functions
// complete and some abort (-maxnodes) at -jobs 4: every function must
// still report its row, in input order and un-interleaved, and the
// process must exit 3 — deterministically, whatever the scheduling.
// Pre-fix, an abort mid-batch could interleave with other functions'
// output and the exit status depended on which function failed first.
func TestMixedBatchJobsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the binary over a full benchmark")
	}
	// stringsearch at -maxnodes 60: tolower_c and bmha_init complete,
	// the other nine functions abort on the node cap.
	args := []string{"-bench", "stringsearch", "-maxnodes", "60", "-jobs", "4"}
	out, code := runExplore(t, args...)
	if code != 3 {
		t.Fatalf("mixed pass/abort batch exited %d, want 3\noutput:\n%s", code, out)
	}

	wantOrder := []string{
		"tolower_c", "bmh_init", "bmh_search", "bmha_init", "bmha_search",
		"bmhi_init", "bmhi_search", "brute_search", "build_text",
		"set_pattern", "search_main",
	}
	pos := -1
	for _, fn := range wantOrder {
		label := clip(fn, 12) + "(s)"
		i := strings.Index(out, label)
		if i < 0 {
			t.Fatalf("batch output is missing the row for %s:\n%s", fn, out)
		}
		if i < pos {
			t.Fatalf("row for %s is out of input order:\n%s", fn, out)
		}
		if strings.Count(out, label) != 1 {
			t.Fatalf("row for %s appears more than once (interleaved output?):\n%s", fn, out)
		}
		pos = i
	}
	if !strings.Contains(out, "N/A") {
		t.Fatalf("no aborted (N/A) rows in a batch that must abort:\n%s", out)
	}

	// A concurrent batch must commit byte-identical output to a serial
	// one: buffering per function is what keeps -jobs deterministic.
	serialOut, serialCode := runExplore(t, args[:len(args)-2]...)
	out2, code2 := runExplore(t, args...)
	if code2 != code || serialCode != code {
		t.Fatalf("exit codes differ across runs: jobs=4 %d/%d, serial %d", code, code2, serialCode)
	}
	if !sameRows(out2, out) {
		t.Fatalf("two -jobs 4 runs produced different output:\n--- first\n%s\n--- second\n%s", out, out2)
	}
	if !sameRows(serialOut, out) {
		t.Fatalf("-jobs 4 output differs from the serial run:\n--- serial\n%s\n--- jobs\n%s", serialOut, out)
	}
}

// sameRows compares two explore outputs ignoring the per-function
// wall-clock suffix ("[12ms]"), which legitimately varies run to run.
func sameRows(a, b string) bool {
	return stripTimes(a) == stripTimes(b)
}

func stripTimes(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if i := strings.LastIndex(line, "   ["); i >= 0 && strings.HasSuffix(line, "]") {
			line = line[:i]
		}
		// The summary line totals include wall-clock times too.
		if strings.Contains(line, "functions enumerated completely") {
			if i := strings.Index(line, "; enumeration"); i >= 0 {
				line = line[:i]
			}
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}
