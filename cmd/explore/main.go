// Command explore exhaustively enumerates the optimization phase order
// space of the benchmark functions and prints the per-function search
// statistics of Table 3.
//
// Usage:
//
//	explore [flags]
//
//	-bench name     restrict to one benchmark (default: all six)
//	-func name      restrict to one function
//	-cap n          per-level sequence cap (paper: 1000000)
//	-maxnodes n     abort a function beyond n distinct instances
//	-timeout d      per-function wall-clock budget (0 = none)
//	-verify         differentially execute every instance (slow)
//	-check          run the internal/check semantic verifier on every
//	                instance; failing sequences are reported and the
//	                exit status is nonzero
//	-phases         print the Table 1 phase catalog and exit
//	-list           print the Table 2 benchmark list and exit
//	-levels         also print instances per level (Figure 4 view)
//	-jobs n         enumerate up to n functions concurrently; output
//	                stays in deterministic input order (default 1)
//	-equiv          collapse instances that are equivalent beyond
//	                register/label renumbering into one node (the
//	                dataflow equivalence tier); prints a collapse
//	                summary per function. Mutually exclusive with
//	                -checkpoint/-resume: the class tables are not
//	                persisted across restarts
//	-speed          best-performing leaf via CF-class inference (Sec. 7)
//	-save dir       persist each space for phasestats -load / spacedot
//
// Robustness (see DESIGN.md §Robustness):
//
//	-checkpoint dir   write a crash-safe checkpoint of each search to
//	                  <dir>/<bench>.<func>.ckpt.space.gz at level
//	                  boundaries and on every abort (including Ctrl-C);
//	                  when the search completes, the file holds the
//	                  finished space
//	-resume           continue each function from its checkpoint file in
//	                  the -checkpoint dir instead of starting over
//	-ckpt-levels n    checkpoint every n completed levels (default 1)
//	-ckpt-interval d  also checkpoint when d has passed since the last
//	                  write (0 = level cadence only)
//	-watchdog d       quarantine any single phase application running
//	                  longer than d (0 = no watchdog)
//	-faults spec      inject faults (internal/faultinject syntax); the
//	                  REPRO_FAULTS environment variable is the fallback
//
// The exit status is 0 on success, 1 on usage, per-function or check
// failures, 3 when any function's search aborted (timeout, cap, or
// cancellation) or produced quarantined nodes (the space is then
// incomplete), and 130 on interrupt. A function that fails mid-batch
// still flushes its buffered output un-interleaved, and the remaining
// functions of the batch are committed before the process exits, so
// -jobs N reports every function and the exit code deterministically,
// whatever the scheduling.
//
// Observability (see DESIGN.md §Observability):
//
//	-metrics file   write a metrics snapshot (per-phase attempt counts
//	                and durations, prune counters) as JSON on exit;
//	                aggregate with "phasestats -from-metrics"
//	-trace file     write Chrome trace_event JSON; load in
//	                chrome://tracing or https://ui.perfetto.dev
//	-progress       tick one-line status updates to stderr
//	-pprof addr     serve net/http/pprof and /debug/vars
//
// An interrupt (Ctrl-C) cancels the running search cooperatively and
// still flushes the -metrics and -trace files.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/check"
	"repro/internal/faultinject"
	"repro/internal/interp"
	"repro/internal/mibench"
	"repro/internal/opt"
	"repro/internal/rtl"
	"repro/internal/search"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run())
}

// run is main with deferred cleanup: the telemetry session must flush
// its files even on early returns and interrupts, which os.Exit in
// main would skip.
func run() int {
	var (
		benchName = flag.String("bench", "", "restrict to one benchmark")
		funcName  = flag.String("func", "", "restrict to one function")
		levelCap  = flag.Int("cap", 1_000_000, "per-level sequence cap")
		maxNodes  = flag.Int("maxnodes", 0, "abort beyond this many distinct instances (0 = unlimited)")
		timeout   = flag.Duration("timeout", 0, "per-function time budget (0 = none)")
		verify    = flag.Bool("verify", false, "differentially execute every enumerated instance")
		checkAll  = flag.Bool("check", false, "statically verify every enumerated instance (internal/check)")
		phases    = flag.Bool("phases", false, "print the phase catalog (Table 1) and exit")
		list      = flag.Bool("list", false, "print the benchmark list (Table 2) and exit")
		levels    = flag.Bool("levels", false, "print instances per level for each function")
		speed     = flag.Bool("speed", false, "find the best-performing leaf instance via control-flow-class inference (Section 7)")
		equiv     = flag.Bool("equiv", false, "collapse equivalence classes beyond renumbering (internal/dataflow tier)")
		saveDir   = flag.String("save", "", "write each enumerated space to <dir>/<bench>.<func>.space.gz")
		jobs      = flag.Int("jobs", 1, "number of functions enumerated concurrently")
		searchW   = flag.Int("search-workers", 0, "worker parallelism inside each enumeration (0 = NumCPU; the space is byte-identical at any width)")
		ckptDir   = flag.String("checkpoint", "", "write crash-safe checkpoints to <dir>/<bench>.<func>.ckpt.space.gz")
		resume    = flag.Bool("resume", false, "continue each function from its -checkpoint file")
		ckptEvery = flag.Int("ckpt-levels", 1, "checkpoint every n completed levels")
		ckptIval  = flag.Duration("ckpt-interval", 0, "also checkpoint after this much time since the last write (0 = level cadence only)")
		watchdog  = flag.Duration("watchdog", 0, "quarantine a phase application running longer than this (0 = off)")
		faultSpec = flag.String("faults", "", "fault injection spec (falls back to $"+faultinject.EnvVar+")")
		tflags    telemetry.Flags
	)
	tflags.Register(flag.CommandLine)
	flag.Parse()

	if *phases {
		fmt.Println("Candidate optimization phases (Table 1):")
		for _, p := range opt.All() {
			req := "any order"
			switch p.ID() {
			case 'o':
				req = "only before register assignment"
			case 'k':
				req = "only after instruction selection"
			case 'g', 'l':
				req = "only after register allocation"
			}
			fmt.Printf("  %c  %-34s (%s)\n", p.ID(), p.Name(), req)
		}
		return 0
	}
	if *list {
		fmt.Println("Benchmarks (Table 2):")
		for _, p := range mibench.All() {
			fmt.Printf("  %-10s %-12s %s\n", p.Category, p.Name, p.Description)
		}
		return 0
	}

	faults, err := faultinject.FromEnv()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if *faultSpec != "" {
		if faults, err = faultinject.Parse(*faultSpec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "explore: -resume requires -checkpoint")
		return 1
	}
	if *equiv && (*ckptDir != "" || *resume) {
		fmt.Fprintln(os.Stderr, "explore: -equiv is mutually exclusive with -checkpoint/-resume (class tables are not persisted)")
		return 1
	}

	session, err := tflags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer session.Close()
	if session.Registry != nil {
		opt.Metrics = opt.NewPhaseMetrics(session.Registry)
		check.Metrics = check.NewVerifyMetrics(session.Registry)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	funcs, err := mibench.AllFunctions()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	fmt.Println(search.TableHeader())
	totalStart := time.Now()
	done := 0
	aborted := 0
	checkFails := 0
	totalNodes, totalEdges := 0, 0
	var totalElapsed time.Duration

	var selected []mibench.TaggedFunc
	for _, tf := range funcs {
		if *benchName != "" && tf.Bench != *benchName {
			continue
		}
		if *funcName != "" && tf.Func.Name != *funcName {
			continue
		}
		selected = append(selected, tf)
	}

	// processFunc enumerates one function, writing everything destined
	// for stdout (and stderr diagnostics) into buffers so that
	// concurrent enumerations (-jobs) can commit their output in
	// deterministic input order, un-interleaved even when a function
	// fails mid-batch.
	type funcResult struct {
		out        bytes.Buffer
		errOut     bytes.Buffer
		r          *search.Result
		err        error
		checkFails int
	}
	processFunc := func(tf mibench.TaggedFunc) *funcResult {
		fr := &funcResult{}
		opts := search.Options{
			MaxSeqPerLevel:        *levelCap,
			MaxNodes:              *maxNodes,
			Timeout:               *timeout,
			Check:                 *checkAll,
			Workers:               *searchW,
			Ctx:                   ctx,
			Metrics:               session.Registry,
			Tracer:                session.Tracer,
			CheckpointEveryLevels: *ckptEvery,
			CheckpointInterval:    *ckptIval,
			AttemptWatchdog:       *watchdog,
			Faults:                faults,
			Equiv:                 *equiv,
		}
		if *ckptDir != "" {
			opts.CheckpointPath = filepath.Join(*ckptDir,
				fmt.Sprintf("%s.%s.ckpt.space.gz", tf.Bench, tf.Func.Name))
		}
		if session.Progress {
			opts.ProgressInterval = 2 * time.Second
		}
		if *verify {
			opts.Verifier = makeVerifier(tf)
		}
		r, err := runOrResume(tf.Func, opts, *resume)
		if err != nil {
			fr.err = err
			return fr
		}
		fr.r = r
		if *checkAll {
			for _, n := range r.CheckFailures() {
				fmt.Fprintf(&fr.out, "    CHECK FAIL %s seq %q: %s\n", tf.Func.Name, n.Seq, n.CheckErr)
				fr.checkFails++
			}
		}
		st := search.ComputeStats(r)
		st.Function = fmt.Sprintf("%s(%s)", clip(tf.Func.Name, 12), tf.Bench[:1])
		fmt.Fprintf(&fr.out, "%s   [%s]\n", st.TableRow(), r.Elapsed.Round(time.Millisecond))
		if r.Equiv != nil {
			fmt.Fprintf(&fr.out, "    equiv: %d raw instances -> %d classes (%d folded, %.1f%% collapse%s)\n",
				r.Equiv.Raw, r.Equiv.Raw-r.Equiv.Merged, r.Equiv.Merged,
				100*r.Equiv.CollapseRatio(), byPhaseSuffix(r.Equiv.RedundantByPhase))
		}
		for _, n := range r.QuarantinedNodes() {
			fmt.Fprintf(&fr.out, "    QUARANTINED %s seq %q: %s\n", tf.Func.Name, n.Seq, n.Quarantine)
		}
		if r.CheckpointErr != "" {
			fmt.Fprintf(&fr.errOut, "explore: %s: checkpointing failed, last good checkpoint kept: %s\n",
				tf.Func.Name, r.CheckpointErr)
		}
		if *saveDir != "" && !r.Aborted {
			path := filepath.Join(*saveDir, fmt.Sprintf("%s.%s.space.gz", tf.Bench, tf.Func.Name))
			if err := r.SaveFile(path); err != nil {
				fr.err = err
				return fr
			}
		}
		if *levels && !r.Aborted {
			fmt.Fprintf(&fr.out, "    per-level instances: %v\n", search.NodesPerLevel(r))
		}
		if *speed && !r.Aborted {
			p, err := mibench.ByName(tf.Bench)
			if err != nil {
				fr.err = err
				return fr
			}
			best, all, executions, err := r.BestDynamicCount(tf.Prog, p.Driver, p.DriverArgs)
			if err != nil {
				fmt.Fprintf(&fr.out, "    speed: %v\n", err)
				return fr
			}
			var worst int64
			for _, e := range all {
				if e.Instrs > worst {
					worst = e.Instrs
				}
			}
			fmt.Fprintf(&fr.out, "    speed: best leaf %d dyn-instrs (seq %q), worst %d (+%.1f%%); %d leaves inferred from %d executions\n",
				best.Instrs, best.Node.Seq, worst,
				100*float64(worst-best.Instrs)/float64(max64(best.Instrs, 1)),
				len(all), executions)
		}
		return fr
	}

	// Evaluate up to -jobs functions concurrently, committing results
	// (printing and totals) strictly in input order so the output and
	// exit status never depend on scheduling.
	nJobs := *jobs
	if nJobs < 1 {
		nJobs = 1
	}
	results := make([]*funcResult, len(selected))
	ready := make([]chan struct{}, len(selected))
	sem := make(chan struct{}, nJobs)
	for i := range selected {
		ready[i] = make(chan struct{})
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem; close(ready[i]) }()
			results[i] = processFunc(selected[i])
		}(i)
	}
	funcErrs := 0
	quarantinedFuncs := 0
	interrupted := false
	for i := range selected {
		<-ready[i]
		fr := results[i]
		// Flush the buffered output before looking at the error: a
		// function that failed mid-batch (save error, driver failure)
		// may have produced its table row and diagnostics already, and
		// dropping them would make the batch report depend on which
		// function happened to fail.
		os.Stdout.Write(fr.out.Bytes())
		os.Stderr.Write(fr.errOut.Bytes())
		if fr.err != nil {
			fmt.Fprintln(os.Stderr, fr.err)
			funcErrs++
			continue
		}
		checkFails += fr.checkFails
		r := fr.r
		totalNodes += len(r.Nodes)
		totalEdges += r.Stats.Edges
		totalElapsed += r.Elapsed
		if len(r.QuarantinedNodes()) > 0 {
			quarantinedFuncs++
		}
		if r.Aborted {
			aborted++
		} else {
			done++
		}
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "explore: interrupted; flushing telemetry")
			interrupted = true
			break
		}
	}
	if done+aborted == 0 {
		if funcErrs > 0 {
			return 1
		}
		fmt.Printf("\nno functions matched (bench %q, func %q)\n", *benchName, *funcName)
		return 1
	}
	fmt.Printf("\n%d of %d functions enumerated completely (%.1f%%): %d distinct instances, %d edges; enumeration %s, wall %s\n",
		done, done+aborted, 100*float64(done)/float64(done+aborted),
		totalNodes, totalEdges,
		totalElapsed.Round(time.Millisecond), time.Since(totalStart).Round(time.Millisecond))
	if *checkAll {
		if checkFails > 0 {
			fmt.Printf("check: %d instances FAILED semantic verification\n", checkFails)
		} else {
			fmt.Println("check: every enumerated instance verified clean")
		}
	}
	// The exit code is a deterministic function of what happened, in a
	// fixed precedence: per-function errors and check failures (1) over
	// interrupt (130) over incomplete spaces — aborts or quarantined
	// nodes (3).
	if funcErrs > 0 || checkFails > 0 {
		return 1
	}
	if interrupted || ctx.Err() != nil {
		return 130
	}
	if aborted > 0 || quarantinedFuncs > 0 {
		return 3
	}
	return 0
}

// runOrResume starts a fresh enumeration, or — under -resume — picks
// the function up from its checkpoint file when one exists. A
// checkpoint holding an already-complete space is returned as-is
// (Resume is a no-op on it), so rerunning with -resume is idempotent.
func runOrResume(f *rtl.Func, opts search.Options, resume bool) (*search.Result, error) {
	if resume {
		loaded, err := search.LoadFile(opts.CheckpointPath)
		switch {
		case err == nil:
			if loaded.FuncName != f.Name {
				return nil, fmt.Errorf("explore: checkpoint %s belongs to function %q, not %q",
					opts.CheckpointPath, loaded.FuncName, f.Name)
			}
			return search.Resume(loaded, opts)
		case os.IsNotExist(err):
			// No checkpoint yet: fresh start.
		default:
			return nil, fmt.Errorf("explore: reading checkpoint: %w", err)
		}
	}
	return search.Run(f, opts), nil
}

// makeVerifier returns a function that checks an instance behaves like
// the unoptimized program on the benchmark driver.
func makeVerifier(tf mibench.TaggedFunc) func(*rtl.Func) error {
	p, err := mibench.ByName(tf.Bench)
	if err != nil {
		panic(err)
	}
	ref, err := interp.Run(tf.Prog, p.Driver, p.DriverArgs...)
	if err != nil {
		panic(fmt.Sprintf("reference run failed: %v", err))
	}
	return func(f *rtl.Func) error {
		mod := tf.Prog.Clone()
		for i, fn := range mod.Funcs {
			if fn.Name == f.Name {
				mod.Funcs[i] = f
			}
		}
		got, err := interp.Run(mod, p.Driver, p.DriverArgs...)
		if err != nil {
			return err
		}
		if got.Ret != ref.Ret || len(got.Trace) != len(ref.Trace) {
			return fmt.Errorf("behaviour diverged (ret %d vs %d)", got.Ret, ref.Ret)
		}
		for i := range ref.Trace {
			if got.Trace[i] != ref.Trace[i] {
				return fmt.Errorf("trace diverged at %d", i)
			}
		}
		return nil
	}
}

// byPhaseSuffix renders an equivalence tier's per-phase redundancy
// attribution as "; by phase b:12 r:3", phases in ID order, or ""
// when nothing folded.
func byPhaseSuffix(byPhase map[string]int) string {
	if len(byPhase) == 0 {
		return ""
	}
	ids := make([]string, 0, len(byPhase))
	for id := range byPhase {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	s := "; by phase"
	for _, id := range ids {
		s += fmt.Sprintf(" %s:%d", id, byPhase[id])
	}
	return s
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
